//! The length-prefixed binary frame that crosses the edge↔server link.
//!
//! Every message — in both directions — is one [`Frame`]:
//!
//! ```text
//! offset  size  field
//! 0       4     magic 0x4D544C53 ("MTLS"), little-endian
//! 4       1     protocol version (currently 3)
//! 5       1     op code
//! 6       8     request id, u64 little-endian
//! 14      4     body length n, u32 little-endian
//! 18      4     CRC-32 (IEEE) over bytes [4, 18) and the body, little-endian
//! 22      n     body
//! ```
//!
//! The body of an [`OpCode::InferRequest`] is exactly one
//! [`mtlsplit_split::WirePayload`] in its binary form; the body of an
//! [`OpCode::InferResponse`] is the task-output list encoded by
//! [`crate::wire`]. [`OpCode::Error`] carries a UTF-8 message. Frames are
//! self-delimiting, so a stream of them needs no extra framing.
//!
//! Protocol version 2 added the CRC-32 checksum: it covers everything after
//! the magic/version prefix (op code, request id, length and body), so *any*
//! single corrupted byte in a frame is rejected with a typed error — a
//! flipped bit in a request id or a payload byte can no longer silently
//! deliver a wrong answer.
//!
//! Protocol version 3 added the metrics scrape: an empty-bodied
//! [`OpCode::MetricsRequest`] is answered with an
//! [`OpCode::MetricsResponse`] whose body is the snapshot codec defined in
//! [`crate::wire`], so an edge client can read a live server's throughput,
//! latency quantiles and phase breakdown over the same socket it infers on.
//!
//! Protocol version 4 added split negotiation: a client may open its
//! connection with an [`OpCode::Hello`] carrying its device class and
//! latency budget (encoded by [`crate::wire::encode_hello`]), and the server
//! answers with an [`OpCode::HelloAck`] naming the backbone stage the client
//! should cut at — chosen from the server's tuned deployment profile. The
//! header kept its exact v3 layout, so both versions interoperate: a v4
//! server accepts v3 frames (and answers a v3 `Hello` with its default
//! split), and every frame carries the version it was sent under in
//! [`Frame::version`].
//!
//! Protocol version 5 added typed error codes: the body of an
//! [`OpCode::Error`] frame sent at v5 starts with one [`ErrorCode`] byte
//! followed by the UTF-8 message, so a client can tell a retryable
//! infrastructure condition (the server is [`ErrorCode::ShuttingDown`], the
//! queue is [`ErrorCode::Overloaded`], the connection was
//! [`ErrorCode::Evicted`]) from a terminal application error without
//! parsing prose. [`Frame::error_info`] recovers the code and message from
//! any version: pre-v5 error bodies decode as [`ErrorCode::App`] with the
//! whole body as the message. The header layout is unchanged since v3.
//!
//! # Pipelining and out-of-order completion
//!
//! Frames are self-delimiting and every request carries a client-chosen
//! `request_id`, so one socket supports *pipelining*: a client may send N
//! requests before reading any response. The completion rule is that the
//! server answers each request **exactly once** but in **any order** —
//! responses are correlated by `request_id` alone, never by arrival
//! position. Two consequences for pipelined clients: (1) a client must
//! keep ids of in-flight requests unique, and (2) a response whose id
//! matches no in-flight request is a protocol violation. The single
//! exception is `request_id == 0` on an [`OpCode::Error`] frame, which the
//! server reserves for connection-scoped "goodbye" notices (shutdown,
//! eviction, overload at accept) that address the connection rather than
//! any one request. [`FrameAssembler`] is the incremental parser used by
//! the non-blocking server front-end to cut frames out of a byte stream
//! that arrives in arbitrary fragments.

use std::io::{Read, Write};

use crate::error::{Result, ServeError};

/// Protocol magic: `b"MTLS"` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"MTLS");

/// Protocol version this build speaks.
pub const VERSION: u8 = 5;

/// Oldest protocol version this build still accepts. Versions 3 through 5
/// share the header layout byte for byte; 4 added op codes and 5 added the
/// leading [`ErrorCode`] byte in [`OpCode::Error`] bodies.
pub const MIN_VERSION: u8 = 3;

/// First protocol version that speaks `Hello`/`HelloAck` split negotiation.
pub const HELLO_VERSION: u8 = 4;

/// First protocol version whose [`OpCode::Error`] bodies carry a leading
/// [`ErrorCode`] byte.
pub const ERROR_CODE_VERSION: u8 = 5;

/// Size of the fixed frame header in bytes.
pub const HEADER_BYTES: usize = 4 + 1 + 1 + 8 + 4 + 4;

/// Byte offset of the CRC-32 field inside the header.
const CRC_OFFSET: usize = 18;

/// Default cap on a frame body, protecting servers from corrupt or hostile
/// length prefixes (64 MiB).
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// generated at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over a sequence of byte slices, as if concatenated.
fn crc32(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &byte in *part {
            let index = ((crc ^ byte as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ CRC32_TABLE[index];
        }
    }
    !crc
}

/// Message kind carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Edge → server: one encoded `Z_b` payload to run through the heads.
    InferRequest = 1,
    /// Server → edge: one output payload per task head.
    InferResponse = 2,
    /// Edge → server: liveness probe.
    Ping = 3,
    /// Server → edge: liveness answer.
    Pong = 4,
    /// Server → edge: the request failed; body is a UTF-8 message.
    Error = 5,
    /// Edge → server: scrape a live metrics snapshot; empty body.
    MetricsRequest = 6,
    /// Server → edge: one [`crate::ServeMetrics`] snapshot encoded by
    /// [`crate::wire::encode_metrics`].
    MetricsResponse = 7,
    /// Edge → server: split negotiation opener; body is the client's device
    /// class and latency budget, encoded by [`crate::wire::encode_hello`].
    Hello = 8,
    /// Server → edge: the negotiated split assignment, encoded by
    /// [`crate::wire::encode_split_assignment`].
    HelloAck = 9,
}

impl OpCode {
    /// Parses an op code byte.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownOpCode`] for bytes outside the protocol.
    pub fn from_byte(code: u8) -> Result<Self> {
        match code {
            1 => Ok(OpCode::InferRequest),
            2 => Ok(OpCode::InferResponse),
            3 => Ok(OpCode::Ping),
            4 => Ok(OpCode::Pong),
            5 => Ok(OpCode::Error),
            6 => Ok(OpCode::MetricsRequest),
            7 => Ok(OpCode::MetricsResponse),
            8 => Ok(OpCode::Hello),
            9 => Ok(OpCode::HelloAck),
            _ => Err(ServeError::UnknownOpCode { code }),
        }
    }
}

/// Machine-readable classification carried as the first body byte of an
/// [`OpCode::Error`] frame since protocol version 5.
///
/// The codes split errors the way a fault-tolerant client needs them split:
/// [`ErrorCode::App`] is terminal for the request (retrying the same payload
/// reproduces it), while the infrastructure codes describe conditions of the
/// *channel or server*, which retries, reconnects or a local fallback can
/// route around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request itself failed (bad payload, shape mismatch, …); a resend
    /// of the same bytes will fail identically.
    App = 0,
    /// The frame violated the wire protocol (bad checksum, unknown op code,
    /// unsupported version); the offending frame was consumed and the
    /// connection keeps serving.
    Protocol = 1,
    /// The server is shutting down; the connection is about to close and the
    /// request was not (and will not be) served.
    ShuttingDown = 2,
    /// The server's request queue rejected the request under load; a retry
    /// after backoff may succeed.
    Overloaded = 3,
    /// The server evicted this connection (e.g. a read timeout fired on a
    /// stalled peer); the socket closes right after this frame.
    Evicted = 4,
}

impl ErrorCode {
    /// Parses an error-code byte; unknown bytes (from a newer peer) map to
    /// `None` and callers fall back to [`ErrorCode::App`].
    pub fn from_byte(code: u8) -> Option<Self> {
        match code {
            0 => Some(ErrorCode::App),
            1 => Some(ErrorCode::Protocol),
            2 => Some(ErrorCode::ShuttingDown),
            3 => Some(ErrorCode::Overloaded),
            4 => Some(ErrorCode::Evicted),
            _ => None,
        }
    }

    /// Whether a client may usefully retry after seeing this code.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::ShuttingDown | ErrorCode::Overloaded | ErrorCode::Evicted
        )
    }
}

/// Header fields parsed from the wire but not yet version-validated,
/// checksum-verified or op-code-validated — the single definition of the
/// header layout shared by [`Frame::decode`] and [`Frame::read_from`].
struct RawHeader {
    version: u8,
    op_byte: u8,
    request_id: u64,
    body_len: usize,
    declared_crc: u32,
}

impl RawHeader {
    /// Validates the magic, then splits the fixed header fields out. The
    /// version is *not* validated here: the body length sits at a fixed
    /// offset in every version, so a reader can consume the body of a
    /// version it does not speak and keep the stream synchronized.
    fn parse(header: &[u8; HEADER_BYTES]) -> Result<Self> {
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(ServeError::BadMagic { found: magic });
        }
        Ok(Self {
            version: header[4],
            op_byte: header[5],
            request_id: u64::from_le_bytes(header[6..14].try_into().expect("8 bytes")),
            body_len: u32::from_le_bytes(header[14..18].try_into().expect("4 bytes")) as usize,
            declared_crc: u32::from_le_bytes(
                header[CRC_OFFSET..CRC_OFFSET + 4]
                    .try_into()
                    .expect("4 bytes"),
            ),
        })
    }

    /// Validates the version range, verifies the declared CRC-32 against the
    /// checksummed region (version..length inside `header`, then `body`) and
    /// finishes building the frame, validating the op code last.
    fn into_frame(self, header: &[u8; HEADER_BYTES], body: Vec<u8>) -> Result<Frame> {
        if !(MIN_VERSION..=VERSION).contains(&self.version) {
            return Err(ServeError::UnsupportedVersion {
                found: self.version,
            });
        }
        let actual = crc32(&[&header[4..CRC_OFFSET], &body]);
        if self.declared_crc != actual {
            return Err(ServeError::ChecksumMismatch {
                declared: self.declared_crc,
                actual,
            });
        }
        Ok(Frame {
            request_id: self.request_id,
            version: self.version,
            op: OpCode::from_byte(self.op_byte)?,
            body,
        })
    }
}

/// One message read leniently from a stream: either a valid [`Frame`], or a
/// rejected one whose bytes were fully consumed — the stream is still
/// synchronized, so a server can answer with a typed error frame and keep
/// the connection alive instead of severing it.
#[derive(Debug)]
pub enum Received {
    /// A well-formed frame.
    Frame(Frame),
    /// A frame-shaped message that failed validation (unsupported version,
    /// unknown op code, or checksum mismatch) after its body was consumed.
    Rejected {
        /// The request id claimed by the rejected header, for the error
        /// reply. (Under a checksum mismatch it may itself be corrupt —
        /// still the best correlation hint available.)
        request_id: u64,
        /// Why the frame was rejected.
        error: ServeError,
    },
}

/// One protocol message: header plus opaque body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen id echoed back by the server, correlating requests with
    /// responses.
    pub request_id: u64,
    /// Protocol version the frame was sent under. [`Frame::new`] stamps the
    /// current [`VERSION`]; decoding preserves whatever the peer sent.
    pub version: u8,
    /// Message kind.
    pub op: OpCode,
    /// Message body; its meaning depends on `op`.
    pub body: Vec<u8>,
}

impl Frame {
    /// Creates a frame speaking the current protocol version.
    pub fn new(op: OpCode, request_id: u64, body: Vec<u8>) -> Self {
        Self {
            request_id,
            version: VERSION,
            op,
            body,
        }
    }

    /// Creates a frame stamped with an explicit (older) protocol version,
    /// e.g. to interoperate with — or impersonate, in tests — a v3 peer.
    pub fn with_version(op: OpCode, request_id: u64, body: Vec<u8>, version: u8) -> Self {
        Self {
            request_id,
            version,
            op,
            body,
        }
    }

    /// Creates an [`OpCode::Error`] frame carrying `message` under the
    /// generic [`ErrorCode::App`] classification.
    pub fn error(request_id: u64, message: &str) -> Self {
        Self::error_coded(request_id, ErrorCode::App, message)
    }

    /// Creates an [`OpCode::Error`] frame with an explicit [`ErrorCode`]
    /// (protocol v5 body layout: one code byte, then the UTF-8 message).
    pub fn error_coded(request_id: u64, code: ErrorCode, message: &str) -> Self {
        let mut body = Vec::with_capacity(1 + message.len());
        body.push(code as u8);
        body.extend_from_slice(message.as_bytes());
        Self::new(OpCode::Error, request_id, body)
    }

    /// Splits an [`OpCode::Error`] frame body into its code and message.
    ///
    /// Version-aware: bodies sent at [`ERROR_CODE_VERSION`] or later carry a
    /// leading code byte; earlier versions (and unknown code bytes from
    /// newer peers) decode as [`ErrorCode::App`] with the whole body as the
    /// message. Returns `(App, "")` for frames that are not errors.
    pub fn error_info(&self) -> (ErrorCode, String) {
        if self.op != OpCode::Error {
            return (ErrorCode::App, String::new());
        }
        if self.version >= ERROR_CODE_VERSION {
            if let Some((&byte, rest)) = self.body.split_first() {
                if let Some(code) = ErrorCode::from_byte(byte) {
                    return (code, String::from_utf8_lossy(rest).into_owned());
                }
            }
        }
        (
            ErrorCode::App,
            String::from_utf8_lossy(&self.body).into_owned(),
        )
    }

    /// Exact size of the encoded frame in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + self.body.len()
    }

    /// Encodes the frame into its binary form.
    ///
    /// The CRC-32 is computed over exactly the header bytes emitted after
    /// the magic (version, op, request id, body length) plus the body — the
    /// same region the (internal) `RawHeader::into_frame` verifies on
    /// receipt.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.version);
        out.push(self.op as u8);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        let crc = crc32(&[&out[4..CRC_OFFSET], &self.body]);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Decodes a frame from a buffer that must contain exactly one frame.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeError`] on truncation, bad magic, an unknown
    /// version or op code, a checksum mismatch, or trailing bytes. Every
    /// single-byte corruption of a valid frame is rejected: corruption of
    /// the magic or version prefix hits [`ServeError::BadMagic`] /
    /// [`ServeError::UnsupportedVersion`], corruption of the length field
    /// hits [`ServeError::Truncated`], and everything else is caught by the
    /// CRC-32 as [`ServeError::ChecksumMismatch`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_BYTES {
            return Err(ServeError::Truncated {
                needed: HEADER_BYTES,
                got: bytes.len(),
            });
        }
        let header: &[u8; HEADER_BYTES] = bytes[..HEADER_BYTES].try_into().expect("header");
        let raw = RawHeader::parse(header)?;
        let total = HEADER_BYTES.saturating_add(raw.body_len);
        if bytes.len() != total {
            return Err(ServeError::Truncated {
                needed: total,
                got: bytes.len(),
            });
        }
        raw.into_frame(header, bytes[HEADER_BYTES..].to_vec())
    }

    /// Writes the encoded frame to `writer` and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<()> {
        writer.write_all(&self.encode())?;
        writer.flush()?;
        Ok(())
    }

    /// Reads one frame from `reader`, enforcing `max_body` on the declared
    /// body length before allocating and verifying the checksum once the
    /// body has arrived.
    ///
    /// Returns `Ok(None)` if the stream is cleanly closed before the first
    /// header byte — the peer hung up between frames.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServeError`] on protocol violations (including
    /// [`ServeError::ChecksumMismatch`] for corrupted frames) and
    /// [`ServeError::Io`] on socket failures, including streams cut mid-frame.
    pub fn read_from<R: Read>(reader: &mut R, max_body: usize) -> Result<Option<Self>> {
        match Self::read_from_lenient(reader, max_body)? {
            None => Ok(None),
            Some(Received::Frame(frame)) => Ok(Some(frame)),
            Some(Received::Rejected { error, .. }) => Err(error),
        }
    }

    /// Reads one message from `reader` like [`Frame::read_from`], but keeps
    /// the stream alive across *recoverable* rejections: an unsupported
    /// version, an unknown op code or a checksum mismatch all arrive with an
    /// intact length prefix, so the reader consumes the offending body and
    /// returns [`Received::Rejected`] with the stream positioned at the next
    /// frame. A server uses this to answer garbage with a typed error frame
    /// instead of severing the connection.
    ///
    /// # Errors
    ///
    /// Returns `Err` only for rejections that desynchronize or break the
    /// stream: bad magic, an oversized length prefix, truncation and I/O
    /// failures.
    pub fn read_from_lenient<R: Read>(reader: &mut R, max_body: usize) -> Result<Option<Received>> {
        let mut header = [0u8; HEADER_BYTES];
        let mut filled = 0usize;
        while filled < HEADER_BYTES {
            let n = reader.read(&mut header[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ServeError::Truncated {
                    needed: HEADER_BYTES,
                    got: filled,
                });
            }
            filled += n;
        }
        let raw = RawHeader::parse(&header)?;
        if raw.body_len > max_body {
            return Err(ServeError::Oversized {
                len: raw.body_len,
                max: max_body,
            });
        }
        let mut body = vec![0u8; raw.body_len];
        reader.read_exact(&mut body)?;
        let request_id = raw.request_id;
        match raw.into_frame(&header, body) {
            Ok(frame) => Ok(Some(Received::Frame(frame))),
            Err(error) => Ok(Some(Received::Rejected { request_id, error })),
        }
    }
}

/// Incremental frame parser for non-blocking streams.
///
/// A non-blocking socket delivers bytes in arbitrary fragments — half a
/// header now, three frames at once later. The assembler buffers pushed
/// bytes and cuts complete frames out of them, applying exactly the same
/// validation split as [`Frame::read_from_lenient`]: recoverable rejections
/// (unsupported version, unknown op code, checksum mismatch) surface as
/// [`Received::Rejected`] with the stream still synchronized, while
/// desynchronizing ones (bad magic, an oversized length prefix) surface as
/// `Err` and oblige the caller to sever the connection.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    consumed: usize,
    max_body: usize,
}

impl FrameAssembler {
    /// Creates an assembler enforcing `max_body` on declared body lengths.
    pub fn new(max_body: usize) -> Self {
        Self {
            buf: Vec::new(),
            consumed: 0,
            max_body,
        }
    }

    /// Appends freshly-read bytes, compacting already-consumed ones first.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet cut into a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Cuts the next complete message out of the buffer.
    ///
    /// Returns `Ok(None)` when the buffered bytes do not yet hold a full
    /// frame (more `push`es needed); `Ok(Some(_))` for each complete frame
    /// or recoverable rejection, in arrival order.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadMagic`] or [`ServeError::Oversized`] when the
    /// stream is desynchronized beyond recovery; the connection must be
    /// closed.
    pub fn next_frame(&mut self) -> Result<Option<Received>> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < HEADER_BYTES {
            return Ok(None);
        }
        let header: &[u8; HEADER_BYTES] = pending[..HEADER_BYTES].try_into().expect("header");
        let raw = RawHeader::parse(header)?;
        if raw.body_len > self.max_body {
            return Err(ServeError::Oversized {
                len: raw.body_len,
                max: self.max_body,
            });
        }
        let total = HEADER_BYTES + raw.body_len;
        if pending.len() < total {
            return Ok(None);
        }
        let header = *header;
        let body = pending[HEADER_BYTES..total].to_vec();
        self.consumed += total;
        let request_id = raw.request_id;
        match raw.into_frame(&header, body) {
            Ok(frame) => Ok(Some(Received::Frame(frame))),
            Err(error) => Ok(Some(Received::Rejected { request_id, error })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(OpCode::InferRequest, 42, vec![1, 2, 3, 4, 5])
    }

    #[test]
    fn encode_decode_round_trip() {
        for op in [
            OpCode::InferRequest,
            OpCode::InferResponse,
            OpCode::Ping,
            OpCode::Pong,
            OpCode::Error,
            OpCode::MetricsRequest,
            OpCode::MetricsResponse,
            OpCode::Hello,
            OpCode::HelloAck,
        ] {
            let frame = Frame::new(op, u64::MAX - 3, vec![9; 17]);
            let decoded = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(decoded.version, VERSION);
        }
    }

    #[test]
    fn a_v3_frame_still_decodes_and_keeps_its_version() {
        let frame = Frame::with_version(OpCode::Ping, 11, Vec::new(), 3);
        let decoded = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded.version, 3);
        assert_eq!(decoded, frame);
        // Versions below MIN_VERSION are rejected.
        let ancient = Frame::with_version(OpCode::Ping, 11, Vec::new(), 2);
        assert!(matches!(
            Frame::decode(&ancient.encode()),
            Err(ServeError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn lenient_reads_survive_recoverable_rejections() {
        // Three bad frames back to back, then a good one: the lenient reader
        // must consume each rejected body and stay synchronized.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&Frame::with_version(OpCode::Ping, 1, Vec::new(), 9).encode());
        let mut bad_crc = Frame::new(OpCode::Ping, 2, vec![7, 7]).encode();
        let last = bad_crc.len() - 1;
        bad_crc[last] ^= 0xFF;
        buffer.extend_from_slice(&bad_crc);
        // Hand-build an unknown op code with a valid checksum.
        let mut unknown_op = Vec::new();
        unknown_op.extend_from_slice(&MAGIC.to_le_bytes());
        unknown_op.push(VERSION);
        unknown_op.push(200);
        unknown_op.extend_from_slice(&3u64.to_le_bytes());
        unknown_op.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&[&unknown_op[4..18]]);
        unknown_op.extend_from_slice(&crc.to_le_bytes());
        buffer.extend_from_slice(&unknown_op);
        buffer.extend_from_slice(&Frame::new(OpCode::Ping, 4, Vec::new()).encode());

        let mut cursor = std::io::Cursor::new(buffer);
        let first = Frame::read_from_lenient(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert!(matches!(
            first,
            Received::Rejected {
                request_id: 1,
                error: ServeError::UnsupportedVersion { found: 9 },
            }
        ));
        let second = Frame::read_from_lenient(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert!(matches!(
            second,
            Received::Rejected {
                request_id: 2,
                error: ServeError::ChecksumMismatch { .. },
            }
        ));
        let third = Frame::read_from_lenient(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert!(matches!(
            third,
            Received::Rejected {
                request_id: 3,
                error: ServeError::UnknownOpCode { code: 200 },
            }
        ));
        match Frame::read_from_lenient(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .unwrap()
        {
            Received::Frame(frame) => {
                assert_eq!(frame.op, OpCode::Ping);
                assert_eq!(frame.request_id, 4);
            }
            other => panic!("expected the good frame, got {other:?}"),
        }
        assert!(
            Frame::read_from_lenient(&mut cursor, DEFAULT_MAX_BODY_BYTES)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn encoded_len_is_exact() {
        let frame = sample();
        assert_eq!(frame.encode().len(), frame.encoded_len());
    }

    #[test]
    fn crc32_matches_the_reference_check_value() {
        // The standard CRC-32 check value: crc32(b"123456789") = 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn decode_rejects_truncation_and_corruption() {
        let good = sample().encode();
        for cut in [0, 4, HEADER_BYTES - 1, good.len() - 1] {
            assert!(matches!(
                Frame::decode(&good[..cut]),
                Err(ServeError::Truncated { .. })
            ));
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            Frame::decode(&trailing),
            Err(ServeError::Truncated { .. })
        ));
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(ServeError::BadMagic { .. })
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(ServeError::UnsupportedVersion { found: 9 })
        ));
        // A corrupted op code no longer parses as an op at all — the
        // checksum covers it and fails first.
        let mut bad_op = good.clone();
        bad_op[5] = 200;
        assert!(matches!(
            Frame::decode(&bad_op),
            Err(ServeError::ChecksumMismatch { .. })
        ));
        // A flipped body byte is caught by the checksum.
        let mut bad_body = good.clone();
        let last = bad_body.len() - 1;
        bad_body[last] ^= 0x01;
        assert!(matches!(
            Frame::decode(&bad_body),
            Err(ServeError::ChecksumMismatch { .. })
        ));
        // A flipped request-id byte is caught by the checksum too.
        let mut bad_id = good;
        bad_id[6] ^= 0x80;
        assert!(matches!(
            Frame::decode(&bad_id),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn unknown_op_with_a_valid_checksum_is_still_rejected() {
        // Hand-build a frame whose op byte is outside the protocol but whose
        // checksum is consistent, to reach the UnknownOpCode path.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.push(VERSION);
        bytes.push(200);
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&[&bytes[4..18]]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ServeError::UnknownOpCode { code: 200 })
        ));
    }

    #[test]
    fn stream_round_trip_and_clean_eof() {
        let mut buffer = Vec::new();
        sample().write_to(&mut buffer).unwrap();
        Frame::new(OpCode::Ping, 7, Vec::new())
            .write_to(&mut buffer)
            .unwrap();
        let mut cursor = std::io::Cursor::new(buffer);
        let first = Frame::read_from(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(first, sample());
        let second = Frame::read_from(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(second.op, OpCode::Ping);
        // Clean end-of-stream between frames is not an error.
        assert!(Frame::read_from(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .is_none());
    }

    #[test]
    fn read_rejects_oversized_bodies_before_allocating() {
        let mut bytes = sample().encode();
        // Rewrite the length prefix to claim a 1 GiB body.
        bytes[14..18].copy_from_slice(&(1u32 << 30).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            Frame::read_from(&mut cursor, 1024),
            Err(ServeError::Oversized { .. })
        ));
    }

    #[test]
    fn read_rejects_corrupted_frames_with_a_checksum_error() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            Frame::read_from(&mut cursor, DEFAULT_MAX_BODY_BYTES),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn read_reports_streams_cut_mid_frame() {
        let bytes = sample().encode();
        let mut cursor = std::io::Cursor::new(bytes[..HEADER_BYTES + 2].to_vec());
        assert!(matches!(
            Frame::read_from(&mut cursor, DEFAULT_MAX_BODY_BYTES),
            Err(ServeError::Io(_))
        ));
        let mut header_cut = std::io::Cursor::new(bytes[..7].to_vec());
        assert!(matches!(
            Frame::read_from(&mut header_cut, DEFAULT_MAX_BODY_BYTES),
            Err(ServeError::Truncated { .. })
        ));
    }

    #[test]
    fn magic_spells_mtls() {
        assert_eq!(&MAGIC.to_le_bytes(), b"MTLS");
    }

    #[test]
    fn error_codes_round_trip_through_the_body() {
        for code in [
            ErrorCode::App,
            ErrorCode::Protocol,
            ErrorCode::ShuttingDown,
            ErrorCode::Overloaded,
            ErrorCode::Evicted,
        ] {
            let frame = Frame::error_coded(9, code, "why");
            let decoded = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded.error_info(), (code, "why".to_string()));
        }
        // Retryability is a property of the code, not the message.
        assert!(ErrorCode::ShuttingDown.is_retryable());
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::Evicted.is_retryable());
        assert!(!ErrorCode::App.is_retryable());
        assert!(!ErrorCode::Protocol.is_retryable());
    }

    #[test]
    fn legacy_error_bodies_without_a_code_byte_read_as_app_errors() {
        // A v4 peer sends the bare UTF-8 message with no leading code byte.
        let legacy = Frame::with_version(OpCode::Error, 3, b"boom".to_vec(), 4);
        let decoded = Frame::decode(&legacy.encode()).unwrap();
        assert_eq!(decoded.error_info(), (ErrorCode::App, "boom".to_string()));
        // A non-error frame has no error info at all.
        assert_eq!(sample().error_info(), (ErrorCode::App, String::new()));
    }

    #[test]
    fn adversarial_header_truncations_never_misread() {
        // Every possible header truncation point, streamed: cutting inside
        // the header is `Truncated`, cutting inside the body is `Io`.
        let good = sample().encode();
        for cut in 1..good.len() {
            let mut cursor = std::io::Cursor::new(good[..cut].to_vec());
            let result = Frame::read_from(&mut cursor, DEFAULT_MAX_BODY_BYTES);
            if cut < HEADER_BYTES {
                assert!(
                    matches!(result, Err(ServeError::Truncated { .. })),
                    "cut {cut}: {result:?}"
                );
            } else {
                assert!(
                    matches!(result, Err(ServeError::Io(_))),
                    "cut {cut}: {result:?}"
                );
            }
        }
    }

    #[test]
    fn a_bad_crc_mid_stream_does_not_poison_the_next_frame() {
        // Corrupt frame, then a valid frame, in one contiguous stream: the
        // lenient reader must reject the first and still deliver the second.
        let mut corrupt = Frame::new(OpCode::InferRequest, 5, vec![1, 2, 3]).encode();
        corrupt[HEADER_BYTES] ^= 0x40;
        let mut buffer = corrupt;
        buffer.extend_from_slice(&Frame::new(OpCode::Ping, 6, Vec::new()).encode());
        let mut cursor = std::io::Cursor::new(buffer);
        assert!(matches!(
            Frame::read_from_lenient(&mut cursor, DEFAULT_MAX_BODY_BYTES)
                .unwrap()
                .unwrap(),
            Received::Rejected {
                request_id: 5,
                error: ServeError::ChecksumMismatch { .. },
            }
        ));
        match Frame::read_from_lenient(&mut cursor, DEFAULT_MAX_BODY_BYTES)
            .unwrap()
            .unwrap()
        {
            Received::Frame(frame) => assert_eq!(frame.request_id, 6),
            other => panic!("expected the valid frame, got {other:?}"),
        }
    }

    #[test]
    fn ten_thousand_random_mutations_never_panic_the_decoder() {
        use mtlsplit_tensor::StdRng;
        let mut rng = StdRng::seed_from(0xF0_22);
        let templates = [
            Frame::new(OpCode::InferRequest, 1, vec![0xAB; 64]).encode(),
            Frame::error_coded(2, ErrorCode::Overloaded, "busy").encode(),
            Frame::new(OpCode::Ping, 3, Vec::new()).encode(),
        ];
        for round in 0..10_000u32 {
            let mut bytes = templates[rng.below(templates.len())].clone();
            // 1–3 independent mutations: flip a bit, overwrite a byte, or
            // truncate the tail.
            for _ in 0..=rng.below(3) {
                if bytes.is_empty() {
                    break;
                }
                match rng.below(3) {
                    0 => {
                        let index = rng.below(bytes.len());
                        bytes[index] ^= 1u8 << rng.below(8);
                    }
                    1 => {
                        let index = rng.below(bytes.len());
                        bytes[index] = rng.below(256) as u8;
                    }
                    _ => {
                        let keep = rng.below(bytes.len());
                        bytes.truncate(keep);
                    }
                }
            }
            // Every outcome must be a value, never a panic; when the frame
            // happens to still decode it must satisfy the protocol bounds.
            if let Ok(frame) = Frame::decode(&bytes) {
                assert!(frame.version >= MIN_VERSION, "round {round}");
                assert!(frame.body.len() <= DEFAULT_MAX_BODY_BYTES, "round {round}");
            }
        }
    }

    #[test]
    fn assembler_cuts_frames_from_one_byte_fragments() {
        let frames = [
            Frame::new(OpCode::InferRequest, 7, vec![1, 2, 3]),
            Frame::new(OpCode::Ping, 8, Vec::new()),
            Frame::error_coded(9, ErrorCode::Overloaded, "busy"),
        ];
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&frame.encode());
        }
        let mut assembler = FrameAssembler::new(DEFAULT_MAX_BODY_BYTES);
        let mut out = Vec::new();
        for byte in wire {
            assembler.push(&[byte]);
            while let Some(received) = assembler.next_frame().unwrap() {
                match received {
                    Received::Frame(frame) => out.push(frame),
                    other => panic!("unexpected rejection: {other:?}"),
                }
            }
        }
        assert_eq!(out, frames);
        assert_eq!(assembler.buffered(), 0);
    }

    #[test]
    fn assembler_yields_multiple_frames_from_one_push() {
        let a = Frame::new(OpCode::Ping, 1, Vec::new());
        let b = Frame::new(OpCode::InferRequest, 2, vec![5; 10]);
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());
        let mut assembler = FrameAssembler::new(DEFAULT_MAX_BODY_BYTES);
        assembler.push(&wire);
        assert!(matches!(
            assembler.next_frame().unwrap(),
            Some(Received::Frame(f)) if f == a
        ));
        assert!(matches!(
            assembler.next_frame().unwrap(),
            Some(Received::Frame(f)) if f == b
        ));
        assert!(assembler.next_frame().unwrap().is_none());
    }

    #[test]
    fn assembler_rejects_recoverably_and_stays_synchronized() {
        // A corrupted body byte trips the checksum — a recoverable
        // rejection; the frame after it must still parse.
        let mut bad = Frame::new(OpCode::InferRequest, 5, vec![1, 2, 3]).encode();
        let index = HEADER_BYTES + 1;
        bad[index] ^= 0xFF;
        let good = Frame::new(OpCode::Ping, 6, Vec::new());
        let mut assembler = FrameAssembler::new(DEFAULT_MAX_BODY_BYTES);
        assembler.push(&bad);
        assembler.push(&good.encode());
        assert!(matches!(
            assembler.next_frame().unwrap(),
            Some(Received::Rejected {
                request_id: 5,
                error: ServeError::ChecksumMismatch { .. },
            })
        ));
        assert!(matches!(
            assembler.next_frame().unwrap(),
            Some(Received::Frame(f)) if f == good
        ));
    }

    #[test]
    fn assembler_fails_fatally_on_bad_magic_and_oversize() {
        let mut assembler = FrameAssembler::new(DEFAULT_MAX_BODY_BYTES);
        let mut bytes = Frame::new(OpCode::Ping, 1, Vec::new()).encode();
        bytes[0] ^= 0xFF;
        assembler.push(&bytes);
        assert!(matches!(
            assembler.next_frame(),
            Err(ServeError::BadMagic { .. })
        ));

        let mut small = FrameAssembler::new(4);
        small.push(&Frame::new(OpCode::InferRequest, 2, vec![0; 16]).encode());
        assert!(matches!(
            small.next_frame(),
            Err(ServeError::Oversized { len: 16, max: 4 })
        ));
    }
}
