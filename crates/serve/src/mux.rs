//! Non-blocking multiplexed TCP front-end: one poller thread, many
//! connections, zero threads per socket.
//!
//! [`MuxServer`] replaces the thread-per-connection [`crate::TcpServer`]
//! design on the serving hot path. A single poller thread drives every
//! accepted socket through a readiness loop (the crate's private
//! `readiness` module, a `poll(2)` wrapper with a portable fallback):
//! sockets are non-blocking,
//! each connection owns a small state machine — an incremental
//! [`FrameAssembler`] for partial reads and an outbox buffer for partial
//! writes — and inference work is handed to the shared
//! [`InferenceServer`] worker pool without ever blocking the poller.
//!
//! Three properties fall out of this shape:
//!
//! - **Pipelining.** A client may keep many requests in flight on one
//!   socket; workers complete them in any order and the poller writes each
//!   response frame as it lands (correlated by `request_id`, see the
//!   out-of-order completion rule in [`crate::frame`]).
//! - **Continuous cross-connection batching.** Every readable connection
//!   is drained into the bounded queue on the same tick, so one worker's
//!   next micro-batch coalesces requests from *different* clients instead
//!   of waiting on one client's lonely stream.
//! - **Admission control.** A queue high-water mark answers new infer
//!   requests with a typed [`ErrorCode::Overloaded`] frame *before* any
//!   payload decode, and the accept gate sheds whole connections (typed
//!   goodbye, then close) when the connection budget or the queue is
//!   exhausted. Both paths count into the `shed` metric.
//!
//! Workers finish a request by encoding the response frame and pushing the
//! bytes onto the mux's completion queue, then waking the poller through a
//! self-pipe — the poll tick (10 ms by default) is only a safety net, not
//! the latency floor.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mtlsplit_split::WirePayload;

use crate::error::{Result, ServeError};
use crate::frame::{ErrorCode, Frame, FrameAssembler, OpCode, Received};
use crate::readiness::{wait, Interest, PollEntry, WakeHandle, WakeReader};
use crate::server::{InferenceServer, Responder, SessionState};

/// Identifies one mux connection across threads: the slab index in the low
/// 32 bits, the slot's generation in the high 32. A completion carrying a
/// stale generation (its connection died and the slot was reused) is
/// dropped instead of being written to the wrong client.
pub(crate) type ConnToken = u64;

fn token(index: usize, generation: u32) -> ConnToken {
    ((generation as u64) << 32) | index as u64
}

fn untoken(token: ConnToken) -> (usize, u32) {
    ((token & u32::MAX as u64) as usize, (token >> 32) as u32)
}

/// One finished request travelling from a worker back to the poller: the
/// fully encoded response frame, addressed by connection token.
pub(crate) struct Completion {
    /// Destination connection (generation-tagged).
    pub(crate) conn: ConnToken,
    /// The encoded response frame, ready for the socket.
    pub(crate) bytes: Vec<u8>,
}

/// Configuration of a [`MuxServer`] front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxConfig {
    /// Connection budget: the accept gate sheds (typed goodbye, close)
    /// beyond this many live connections.
    pub max_connections: usize,
    /// Queue depth at which new infer requests are answered
    /// `Overloaded` before decode, and new connections are shed at accept.
    /// `None` uses the server's [`crate::ServerConfig::queue_depth`].
    pub queue_high_water: Option<usize>,
    /// Poll tick: the longest the poller sleeps when nothing is ready.
    /// Worker completions wake it early, so this bounds staleness of
    /// timers (eviction, shutdown), not response latency.
    pub tick: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        Self {
            max_connections: 1024,
            queue_high_water: None,
            tick: Duration::from_millis(10),
        }
    }
}

impl MuxConfig {
    /// Returns this configuration with the given connection budget.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections.max(1);
        self
    }

    /// Returns this configuration with an explicit queue high-water mark.
    pub fn with_queue_high_water(mut self, high_water: usize) -> Self {
        self.queue_high_water = Some(high_water.max(1));
        self
    }

    /// Returns this configuration with the given poll tick.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick.max(Duration::from_millis(1));
        self
    }
}

/// The multiplexed TCP front-end for an [`InferenceServer`].
///
/// Mirrors the [`crate::TcpServer`] surface (`spawn` / `local_addr` /
/// `stop`) so the two front-ends are drop-in interchangeable; the
/// difference is entirely inside: one poller thread instead of one thread
/// per connection.
pub struct MuxServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<WakeHandle>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MuxServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl MuxServer {
    /// Serves `server` on `listener` with the default [`MuxConfig`] until
    /// [`MuxServer::stop`] is called.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot be made non-blocking, its
    /// local address cannot be read, or the wake pipe cannot be built.
    pub fn spawn(server: Arc<InferenceServer>, listener: TcpListener) -> Result<Self> {
        Self::spawn_with(server, listener, MuxConfig::default())
    }

    /// Serves `server` on `listener` under an explicit [`MuxConfig`].
    ///
    /// # Errors
    ///
    /// Same as [`MuxServer::spawn`].
    pub fn spawn_with(
        server: Arc<InferenceServer>,
        listener: TcpListener,
        config: MuxConfig,
    ) -> Result<Self> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (wake_handle, wake_reader) = crate::readiness::wake_pair()?;
        let waker = Arc::new(wake_handle);
        let stop = Arc::new(AtomicBool::new(false));
        let (completions_tx, completions_rx) = mpsc::channel();
        let high_water = config
            .queue_high_water
            .unwrap_or(server.config().queue_depth)
            .max(1);
        let mut poller = MuxLoop {
            listener,
            server,
            config,
            high_water,
            stop: Arc::clone(&stop),
            waker: Arc::clone(&waker),
            wake_reader,
            completions_tx,
            completions_rx,
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            live: 0,
        };
        let thread = std::thread::Builder::new()
            .name("mtlsplit-serve-mux".to_string())
            .spawn(move || poller.run())
            .expect("spawn mux poller thread");
        Ok(Self {
            local_addr,
            stop,
            waker,
            thread: Some(thread),
        })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections, says goodbye to open connections
    /// (typed `Error { code: ShuttingDown }`, request id 0) and joins the
    /// poller thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MuxServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.halt();
        }
    }
}

/// Per-connection state machine: incremental reader, pending writes,
/// session and liveness bookkeeping.
struct Conn {
    stream: TcpStream,
    session: SessionState,
    assembler: FrameAssembler,
    /// Bytes queued for the socket; `sent` of them are already written.
    outbox: Vec<u8>,
    sent: usize,
    /// Requests handed to the worker pool whose responses have not yet
    /// come back through the completion queue.
    in_flight: usize,
    last_read: Instant,
    /// Goodbye queued: stop reading, flush the outbox, then sever.
    closing: bool,
}

impl Conn {
    fn unsent(&self) -> usize {
        self.outbox.len() - self.sent
    }

    fn queue_frame(&mut self, frame: &Frame) {
        self.outbox.extend_from_slice(&frame.encode());
    }
}

/// Per-connection read budget per tick, in bytes: large enough to drain a
/// deep pipeline burst in one pass, small enough that one fast client
/// cannot starve the rest of the poll set.
const READ_BUDGET_PER_TICK: usize = 256 * 1024;

/// Compact the outbox once this many bytes are dead at its front.
const OUTBOX_COMPACT_BYTES: usize = 64 * 1024;

/// How long a stopping mux keeps flushing goodbyes and final responses
/// before severing whatever is left.
const SHUTDOWN_DRAIN: Duration = Duration::from_millis(250);

struct MuxLoop {
    listener: TcpListener,
    server: Arc<InferenceServer>,
    config: MuxConfig,
    high_water: usize,
    stop: Arc<AtomicBool>,
    waker: Arc<WakeHandle>,
    wake_reader: WakeReader,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
    /// Connection slab; freed slots are reused through `free`.
    slots: Vec<Option<Conn>>,
    /// Bumped on every slot free, so stale [`ConnToken`]s never resolve.
    generations: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

impl MuxLoop {
    fn run(&mut self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                self.shutdown_drain();
                return;
            }
            self.tick();
        }
    }

    /// One pass of the readiness loop.
    fn tick(&mut self) {
        // Entries 0 and 1 are the listener and the wake pipe; the rest map
        // to live slab slots through `indices`.
        let mut entries = vec![
            PollEntry::new(&self.listener, Interest::READ),
            PollEntry::new(&self.wake_reader, Interest::READ),
        ];
        let mut indices = Vec::with_capacity(self.live);
        for (index, slot) in self.slots.iter().enumerate() {
            if let Some(conn) = slot {
                entries.push(PollEntry::new(
                    &conn.stream,
                    Interest {
                        readable: !conn.closing,
                        writable: conn.unsent() > 0,
                    },
                ));
                indices.push(index);
            }
        }
        if wait(&mut entries, self.config.tick).is_err() {
            // A failed poll leaves no readiness info; briefly yield so a
            // persistent failure cannot spin the core, then fall through —
            // completions and accepts are retried below regardless.
            std::thread::sleep(Duration::from_millis(1));
        }
        if entries[1].readable() {
            self.wake_reader.drain();
        }
        self.deliver_completions();
        if entries[0].readable() {
            self.accept_ready();
        }
        for (entry, &index) in entries[2..].iter().zip(&indices) {
            if entry.readable() || entry.hangup() {
                self.read_conn(index);
            }
        }
        self.flush_and_reap(&indices);
        self.evict_idle();
    }

    /// Moves every finished worker response into its connection's outbox.
    fn deliver_completions(&mut self) {
        while let Ok(completion) = self.completions_rx.try_recv() {
            let (index, generation) = untoken(completion.conn);
            if self.generations.get(index).copied() != Some(generation) {
                continue; // the connection died; drop the orphan response
            }
            if let Some(Some(conn)) = self.slots.get_mut(index) {
                conn.in_flight = conn.in_flight.saturating_sub(1);
                if !conn.closing {
                    conn.outbox.extend_from_slice(&completion.bytes);
                }
            }
        }
    }

    /// Accepts until the listener would block, shedding past the budget.
    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(err) if err.kind() == ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.stop.load(Ordering::SeqCst) {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            if self.live >= self.config.max_connections
                || self.server.pending_depth() >= self.high_water
            {
                // Pre-accept shed: one typed goodbye, then close. The
                // write is effectively non-blocking (fresh socket, empty
                // send buffer) and best-effort either way.
                self.server.recorder().misc().record_shed();
                let goodbye = Frame::error_coded(
                    0,
                    ErrorCode::Overloaded,
                    "connection shed: server at capacity",
                );
                let mut stream = stream;
                let _ = stream.write_all(&goodbye.encode());
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            let _ = stream.set_nodelay(true);
            let conn = Conn {
                stream,
                session: SessionState::default(),
                assembler: FrameAssembler::new(self.server.config().max_body_bytes),
                outbox: Vec::new(),
                sent: 0,
                in_flight: 0,
                last_read: Instant::now(),
                closing: false,
            };
            match self.free.pop() {
                Some(index) => self.slots[index] = Some(conn),
                None => {
                    self.slots.push(Some(conn));
                    self.generations.push(0);
                }
            }
            self.live += 1;
        }
    }

    /// Reads one connection until it would block (bounded per tick) and
    /// dispatches every complete frame the bytes yield.
    fn read_conn(&mut self, index: usize) {
        let mut scratch = [0u8; 64 * 1024];
        let mut taken = 0usize;
        loop {
            let Some(Some(conn)) = self.slots.get_mut(index) else {
                return;
            };
            if conn.closing {
                return;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    self.sever(index);
                    return;
                }
                Ok(n) => {
                    conn.last_read = Instant::now();
                    conn.assembler.push(&scratch[..n]);
                    taken += n;
                    if !self.dispatch_frames(index) {
                        return; // connection severed mid-parse
                    }
                    if taken >= READ_BUDGET_PER_TICK {
                        return; // fairness bound; the next tick continues
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.sever(index);
                    return;
                }
            }
        }
    }

    /// Cuts and handles every complete frame buffered on `index`. Returns
    /// `false` when the connection was severed (fatal stream desync).
    fn dispatch_frames(&mut self, index: usize) -> bool {
        loop {
            let Some(Some(conn)) = self.slots.get_mut(index) else {
                return false;
            };
            match conn.assembler.next_frame() {
                Ok(None) => return true,
                Ok(Some(Received::Frame(frame))) => self.handle_frame(index, frame),
                Ok(Some(Received::Rejected { request_id, error })) => {
                    // Same contract as the blocking front-end: recoverable
                    // rejections get a typed reply, the stream lives on.
                    self.server.recorder().misc().record_error();
                    let reply =
                        Frame::error_coded(request_id, ErrorCode::Protocol, &error.to_string());
                    if let Some(Some(conn)) = self.slots.get_mut(index) {
                        conn.queue_frame(&reply);
                    }
                }
                Err(_) => {
                    // Bad magic or an oversized length prefix: the byte
                    // stream cannot be trusted past this point.
                    self.server.recorder().misc().record_error();
                    self.sever(index);
                    return false;
                }
            }
        }
    }

    /// Routes one well-formed frame: infer requests go to the worker pool
    /// (or are shed), everything else is answered synchronously.
    fn handle_frame(&mut self, index: usize, frame: Frame) {
        if frame.op != OpCode::InferRequest {
            let server = Arc::clone(&self.server);
            if let Some(Some(conn)) = self.slots.get_mut(index) {
                let response = server.process_on(&frame, &mut conn.session);
                conn.queue_frame(&response);
            }
            return;
        }
        // Admission control *before* decode: under queue pressure the
        // server spends zero decode work on a request it cannot serve.
        if self.server.pending_depth() >= self.high_water {
            self.shed_request(index, frame.request_id);
            return;
        }
        let payload = match WirePayload::decode(&frame.body) {
            Ok(payload) => payload,
            Err(err) => {
                self.server.recorder().misc().record_error();
                let reply =
                    Frame::error_coded(frame.request_id, ErrorCode::Protocol, &err.to_string());
                if let Some(Some(conn)) = self.slots.get_mut(index) {
                    conn.queue_frame(&reply);
                }
                return;
            }
        };
        let Some(Some(conn)) = self.slots.get_mut(index) else {
            return;
        };
        let responder = Responder::Frame {
            conn: token(index, self.generations[index]),
            request_id: frame.request_id,
            completions: self.completions_tx.clone(),
            waker: Arc::clone(&self.waker),
        };
        match self
            .server
            .try_submit(payload, conn.session.variant(), responder)
        {
            Ok(()) => {
                if let Some(Some(conn)) = self.slots.get_mut(index) {
                    conn.in_flight += 1;
                }
            }
            Err(ServeError::QueueFull) => self.shed_request(index, frame.request_id),
            Err(_) => {
                let reply = Frame::error_coded(
                    frame.request_id,
                    ErrorCode::ShuttingDown,
                    "server shutting down",
                );
                if let Some(Some(conn)) = self.slots.get_mut(index) {
                    conn.queue_frame(&reply);
                }
            }
        }
    }

    /// Answers one infer request with a typed `Overloaded` error and
    /// counts the shed.
    fn shed_request(&mut self, index: usize, request_id: u64) {
        self.server.recorder().misc().record_shed();
        let reply = Frame::error_coded(
            request_id,
            ErrorCode::Overloaded,
            "request shed: queue at high water",
        );
        if let Some(Some(conn)) = self.slots.get_mut(index) {
            conn.queue_frame(&reply);
        }
    }

    /// Flushes every connection with queued bytes and reaps the ones that
    /// finished closing (or died mid-write).
    fn flush_and_reap(&mut self, indices: &[usize]) {
        for &index in indices {
            let flushed = self.flush_conn(index);
            if flushed {
                if let Some(Some(conn)) = self.slots.get(index) {
                    if conn.closing && conn.unsent() == 0 {
                        self.sever(index);
                    }
                }
            }
        }
    }

    /// Writes until the socket would block. Returns `false` if the
    /// connection died (and was severed).
    fn flush_conn(&mut self, index: usize) -> bool {
        loop {
            let Some(Some(conn)) = self.slots.get_mut(index) else {
                return false;
            };
            if conn.unsent() == 0 {
                if conn.sent > 0 {
                    conn.outbox.clear();
                    conn.sent = 0;
                }
                return true;
            }
            match conn.stream.write(&conn.outbox[conn.sent..]) {
                Ok(0) => {
                    self.sever(index);
                    return false;
                }
                Ok(n) => {
                    conn.sent += n;
                    if conn.sent == conn.outbox.len() {
                        conn.outbox.clear();
                        conn.sent = 0;
                        return true;
                    }
                    if conn.sent >= OUTBOX_COMPACT_BYTES {
                        conn.outbox.drain(..conn.sent);
                        conn.sent = 0;
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => return true,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.sever(index);
                    return false;
                }
            }
        }
    }

    /// Queues a typed `Evicted` goodbye on connections silent past the
    /// server's read timeout (idle only: no request in flight, nothing
    /// left to write them).
    fn evict_idle(&mut self) {
        let Some(timeout) = self.server.config().client_read_timeout else {
            return;
        };
        for index in 0..self.slots.len() {
            let Some(Some(conn)) = self.slots.get_mut(index) else {
                continue;
            };
            if conn.closing
                || conn.in_flight > 0
                || conn.unsent() > 0
                || conn.last_read.elapsed() < timeout
            {
                continue;
            }
            self.server.recorder().misc().record_eviction();
            conn.queue_frame(&Frame::error_coded(
                0,
                ErrorCode::Evicted,
                "evicted: no frame within the server's read timeout",
            ));
            conn.closing = true;
        }
    }

    /// Frees a slot and bumps its generation so in-flight completions for
    /// the dead connection can never reach a future tenant.
    fn sever(&mut self, index: usize) {
        if let Some(slot) = self.slots.get_mut(index) {
            if let Some(conn) = slot.take() {
                let _ = conn.stream.shutdown(Shutdown::Both);
                self.generations[index] = self.generations[index].wrapping_add(1);
                self.free.push(index);
                self.live -= 1;
            }
        }
    }

    /// Announces shutdown on every open connection, gives the flush a
    /// bounded grace window, then severs whatever is left.
    fn shutdown_drain(&mut self) {
        // Deliver responses that already completed, then say goodbye.
        self.deliver_completions();
        let goodbye = Frame::error_coded(0, ErrorCode::ShuttingDown, "server shutting down");
        let indices: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect();
        for &index in &indices {
            if let Some(Some(conn)) = self.slots.get_mut(index) {
                if !conn.closing {
                    conn.queue_frame(&goodbye);
                    conn.closing = true;
                }
            }
        }
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        while self.live > 0 && Instant::now() < deadline {
            self.flush_and_reap(&indices);
            if self.live == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        for index in indices {
            self.sever(index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use mtlsplit_nn::{Linear, Sequential};
    use mtlsplit_tensor::StdRng;

    fn tiny_server() -> Arc<InferenceServer> {
        let mut rng = StdRng::seed_from(11);
        let head: Box<dyn mtlsplit_nn::Layer> =
            Box::new(Sequential::new().push(Linear::new(8, 3, &mut rng)));
        Arc::new(InferenceServer::start(
            vec![head],
            ServerConfig::default().with_workers(1),
        ))
    }

    #[test]
    fn spawn_ping_stop_round_trip() {
        let server = tiny_server();
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let mux = MuxServer::spawn(Arc::clone(&server), listener).expect("spawn");
        let mut client = TcpStream::connect(mux.local_addr()).expect("connect");
        Frame::new(OpCode::Ping, 9, Vec::new())
            .write_to(&mut client)
            .expect("write ping");
        let pong = Frame::read_from(&mut client, crate::DEFAULT_MAX_BODY_BYTES)
            .expect("read")
            .expect("frame");
        assert_eq!(pong.op, OpCode::Pong);
        assert_eq!(pong.request_id, 9);
        mux.stop();
    }

    #[test]
    fn accept_gate_sheds_past_the_connection_budget() {
        let server = tiny_server();
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let mux = MuxServer::spawn_with(
            Arc::clone(&server),
            listener,
            MuxConfig::default().with_max_connections(1),
        )
        .expect("spawn");
        // First client registers (the ping round trip proves it).
        let mut first = TcpStream::connect(mux.local_addr()).expect("connect");
        Frame::new(OpCode::Ping, 1, Vec::new())
            .write_to(&mut first)
            .expect("write");
        let pong = Frame::read_from(&mut first, crate::DEFAULT_MAX_BODY_BYTES)
            .expect("read")
            .expect("frame");
        assert_eq!(pong.op, OpCode::Pong);
        // Second client is over budget: typed Overloaded goodbye, id 0.
        let mut second = TcpStream::connect(mux.local_addr()).expect("connect");
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let goodbye = Frame::read_from(&mut second, crate::DEFAULT_MAX_BODY_BYTES)
            .expect("read")
            .expect("frame");
        assert_eq!(goodbye.op, OpCode::Error);
        assert_eq!(goodbye.request_id, 0);
        assert_eq!(goodbye.error_info().0, ErrorCode::Overloaded);
        assert!(server.metrics().shed >= 1, "shed counter must move");
        mux.stop();
    }

    #[test]
    fn shutdown_says_goodbye_to_open_connections() {
        let server = tiny_server();
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let mux = MuxServer::spawn(Arc::clone(&server), listener).expect("spawn");
        let mut client = TcpStream::connect(mux.local_addr()).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // Make sure the connection is registered before stopping.
        Frame::new(OpCode::Ping, 2, Vec::new())
            .write_to(&mut client)
            .expect("write");
        let _ = Frame::read_from(&mut client, crate::DEFAULT_MAX_BODY_BYTES).expect("pong");
        mux.stop();
        let goodbye = Frame::read_from(&mut client, crate::DEFAULT_MAX_BODY_BYTES)
            .expect("read")
            .expect("frame");
        assert_eq!(goodbye.error_info().0, ErrorCode::ShuttingDown);
    }
}
