//! Pluggable request/response transports between edge and server.
//!
//! [`Transport`] is the tiny synchronous contract the [`crate::EdgeClient`]
//! speaks: send one frame, get one frame back. Two implementations ship:
//!
//! * [`TcpTransport`] — a real socket to a [`crate::TcpServer`], for actual
//!   deployments and the `serve_demo` example.
//! * [`LoopbackTransport`] — an in-process call into an
//!   [`InferenceServer`], optionally accounting a [`ChannelModel`]'s
//!   transfer time for every frame. It never sleeps, so tests and benches
//!   are hermetic and deterministic while still exercising the exact bytes
//!   a socket would carry.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use mtlsplit_split::ChannelModel;

use crate::error::{Result, ServeError};
use crate::frame::{Frame, DEFAULT_MAX_BODY_BYTES};
use crate::server::{InferenceServer, SessionState};

/// A synchronous frame round-trip to a server.
pub trait Transport: Send {
    /// Sends `frame` and waits for the single response frame.
    ///
    /// # Errors
    ///
    /// Implementation-specific: socket failures, protocol violations, or a
    /// shut-down server.
    fn request(&mut self, frame: &Frame) -> Result<Frame>;

    /// Re-establishes the underlying connection after a failure.
    ///
    /// In-process transports have nothing to re-establish, so the default is
    /// a no-op; [`TcpTransport`] redials its remembered endpoint.
    ///
    /// # Errors
    ///
    /// Returns a connect failure when the endpoint refuses or is unreachable.
    fn reconnect(&mut self) -> Result<()> {
        Ok(())
    }

    /// Sends one frame without waiting for its response — the sending half
    /// of the pipelined contract. Pair with [`Transport::receive`] to keep
    /// several requests in flight on one connection; responses come back in
    /// completion order, correlated by request id (see the out-of-order
    /// completion rule in [`crate::frame`]).
    ///
    /// # Errors
    ///
    /// The default returns an `Unsupported` I/O error: strict
    /// request/response transports cannot decouple the two halves.
    fn send(&mut self, frame: &Frame) -> Result<()> {
        let _ = frame;
        Err(ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "transport cannot send without receiving",
        )))
    }

    /// Reads one more response frame without sending anything — used by the
    /// client's drain-and-resync recovery to skip responses to requests it
    /// has already given up on, and by the pipelined mode to collect
    /// in-flight completions.
    ///
    /// # Errors
    ///
    /// The default returns an `Unsupported` I/O error: strict
    /// request/response transports never have extra frames in flight.
    fn receive(&mut self) -> Result<Frame> {
        Err(ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "transport cannot receive without sending",
        )))
    }

    /// Bounds how long one blocking read/write on the underlying connection
    /// may take. `None` waits forever. In-process transports never block, so
    /// the default accepts and ignores the bounds.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    fn set_timeouts(&mut self, read: Option<Duration>, write: Option<Duration>) -> Result<()> {
        let _ = (read, write);
        Ok(())
    }
}

/// A [`Transport`] over a real TCP connection.
///
/// The transport remembers the endpoint it dialed plus any configured
/// timeouts, so [`Transport::reconnect`] can redial after a drop and
/// re-apply the same socket options to the fresh stream.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    peer: SocketAddr,
    max_body: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl TcpTransport {
    /// Connects to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            peer,
            max_body: DEFAULT_MAX_BODY_BYTES,
            read_timeout: None,
            write_timeout: None,
        })
    }

    /// Returns this transport with a custom response-size cap.
    pub fn with_max_body(mut self, max_body: usize) -> Self {
        self.max_body = max_body;
        self
    }

    fn read_response(&mut self) -> Result<Frame> {
        Frame::read_from(&mut self.stream, self.max_body)?.ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, frame: &Frame) -> Result<Frame> {
        frame.write_to(&mut self.stream)?;
        self.read_response()
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        frame.write_to(&mut self.stream)
    }

    fn reconnect(&mut self) -> Result<()> {
        let stream = TcpStream::connect(self.peer)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_write_timeout(self.write_timeout)?;
        self.stream = stream;
        Ok(())
    }

    fn receive(&mut self) -> Result<Frame> {
        self.read_response()
    }

    fn set_timeouts(&mut self, read: Option<Duration>, write: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)?;
        self.read_timeout = read;
        self.write_timeout = write;
        Ok(())
    }
}

/// A deterministic in-process [`Transport`] that still pays for its bytes.
///
/// Every request encodes the frame exactly as TCP would, hands it to the
/// server's shared [`InferenceServer::process`] entry point, and charges the
/// configured [`ChannelModel`] for the encoded request and response sizes.
/// The accumulated simulated transfer time is available from
/// [`LoopbackTransport::simulated_seconds`] — wall clocks never enter the
/// picture, so results are bit-for-bit reproducible.
pub struct LoopbackTransport {
    server: Arc<InferenceServer>,
    session: SessionState,
    channel: Option<ChannelModel>,
    simulated_seconds: f64,
    bytes_up: u64,
    bytes_down: u64,
    /// Responses produced by [`Transport::send`] but not yet collected by
    /// [`Transport::receive`] — the loopback model of an in-flight window.
    pending: std::collections::VecDeque<Frame>,
}

impl std::fmt::Debug for LoopbackTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackTransport")
            .field("channel", &self.channel)
            .field("simulated_seconds", &self.simulated_seconds)
            .finish()
    }
}

impl LoopbackTransport {
    /// Creates a loopback transport with no channel accounting.
    pub fn new(server: Arc<InferenceServer>) -> Self {
        Self {
            server,
            session: SessionState::default(),
            channel: None,
            simulated_seconds: 0.0,
            bytes_up: 0,
            bytes_down: 0,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// Creates a loopback transport that charges `channel` for every frame.
    pub fn with_channel(server: Arc<InferenceServer>, channel: ChannelModel) -> Self {
        Self {
            server,
            session: SessionState::default(),
            channel: Some(channel),
            simulated_seconds: 0.0,
            bytes_up: 0,
            bytes_down: 0,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// Serves one frame through the shared server entry point, charging the
    /// channel for both directions.
    fn round_trip(&mut self, frame: &Frame) -> Result<Frame> {
        let up = frame.encoded_len();
        // Round-trip the exact wire form so framing bugs cannot hide in the
        // in-process path.
        let decoded = Frame::decode(&frame.encode())?;
        let response = self.server.process_on(&decoded, &mut self.session);
        let down = response.encoded_len();
        self.bytes_up += up as u64;
        self.bytes_down += down as u64;
        if let Some(channel) = &self.channel {
            self.simulated_seconds +=
                channel.transfer_time_bytes(up) + channel.transfer_time_bytes(down);
        }
        Ok(response)
    }

    /// The negotiation state of this in-process "connection" — a loopback
    /// transport is one session, exactly like one TCP connection.
    pub fn session(&self) -> SessionState {
        self.session
    }

    /// Total simulated transfer time accumulated so far, in seconds.
    pub fn simulated_seconds(&self) -> f64 {
        self.simulated_seconds
    }

    /// Frame bytes sent edge → server so far.
    pub fn bytes_up(&self) -> u64 {
        self.bytes_up
    }

    /// Frame bytes received server → edge so far.
    pub fn bytes_down(&self) -> u64 {
        self.bytes_down
    }
}

impl Transport for LoopbackTransport {
    fn request(&mut self, frame: &Frame) -> Result<Frame> {
        self.round_trip(frame)
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        // In-process there is no wire to decouple, so the response is
        // computed eagerly and parked until `receive` collects it — the
        // window bookkeeping a pipelined client exercises stays identical.
        let response = self.round_trip(frame)?;
        self.pending.push_back(response);
        Ok(())
    }

    fn receive(&mut self) -> Result<Frame> {
        self.pending.pop_front().ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "loopback has no pipelined response in flight",
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::OpCode;
    use crate::server::ServerConfig;
    use mtlsplit_nn::{Layer, Linear, Sequential};
    use mtlsplit_split::TensorCodec;
    use mtlsplit_tensor::{StdRng, Tensor};

    fn test_server() -> Arc<InferenceServer> {
        let mut rng = StdRng::seed_from(1);
        let heads: Vec<Box<dyn Layer>> = vec![Box::new(
            Sequential::new().push(Linear::new(8, 3, &mut rng)),
        )];
        Arc::new(InferenceServer::start(heads, ServerConfig::default()))
    }

    #[test]
    fn loopback_round_trips_a_ping() {
        let mut transport = LoopbackTransport::new(test_server());
        let pong = transport
            .request(&Frame::new(OpCode::Ping, 5, Vec::new()))
            .unwrap();
        assert_eq!(pong.op, OpCode::Pong);
        assert_eq!(pong.request_id, 5);
    }

    #[test]
    fn loopback_charges_the_channel_for_both_directions() {
        let server = test_server();
        let channel = ChannelModel::gigabit();
        let mut transport = LoopbackTransport::with_channel(Arc::clone(&server), channel.clone());
        let mut rng = StdRng::seed_from(2);
        let payload = TensorCodec::default().encode(&Tensor::randn(&[1, 8], 0.0, 1.0, &mut rng));
        let frame = Frame::new(OpCode::InferRequest, 1, payload.encode());
        let up = frame.encoded_len();
        let response = transport.request(&frame).unwrap();
        assert_eq!(response.op, OpCode::InferResponse);
        let expected =
            channel.transfer_time_bytes(up) + channel.transfer_time_bytes(response.encoded_len());
        assert!((transport.simulated_seconds() - expected).abs() < 1e-12);
        assert_eq!(transport.bytes_up(), up as u64);
        assert_eq!(transport.bytes_down(), response.encoded_len() as u64);
    }

    #[test]
    fn loopback_is_deterministic() {
        let server = test_server();
        let mut rng = StdRng::seed_from(3);
        let payload = TensorCodec::default().encode(&Tensor::randn(&[2, 8], 0.0, 1.0, &mut rng));
        let frame = Frame::new(OpCode::InferRequest, 7, payload.encode());
        let mut a = LoopbackTransport::with_channel(Arc::clone(&server), ChannelModel::wifi());
        let mut b = LoopbackTransport::with_channel(Arc::clone(&server), ChannelModel::wifi());
        let ra = a.request(&frame).unwrap();
        let rb = b.request(&frame).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.simulated_seconds(), b.simulated_seconds());
    }
}
