//! Split-computing substrate for the MTL-Split reproduction.
//!
//! The paper's deployment analysis (Section 4.2, Table 4) compares three
//! distributed-deep-learning paradigms — Local-only Computing (LoC),
//! Remote-only Computing (RoC) and Split Computing (SC) — on an NVIDIA
//! Jetson Nano edge device talking to a server over a gigabit link. We do not
//! have that hardware, so this crate models exactly the quantities the paper
//! reasons about:
//!
//! * [`ChannelModel`] — bandwidth, propagation latency and degradation of the
//!   edge↔server link, with a per-payload transfer-time simulator.
//! * [`EdgeDevice`] — memory capacity and compute throughput of the edge
//!   board (a Jetson-Nano-like preset is provided), with feasibility checks.
//! * [`TensorCodec`] — serialization (optionally 8-bit quantised) of the
//!   shared representation `Z_b` for transmission.
//! * [`paradigm`] — the LoC/RoC/SC memory- and latency-accounting used to
//!   regenerate the Section 4.2 analysis and Table 4's green columns.
//! * [`SplitPipeline`] — a functional end-to-end run of the split: edge
//!   forward pass, `Z_b` serialization, simulated transfer, remote heads.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use mtlsplit_split::ChannelModel;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let gigabit = ChannelModel::gigabit();
//! // Transferring 100 raw 115 MB images takes ~98 s in the paper.
//! let raw = gigabit.transfer_time_bytes(115_000_000) * 100.0;
//! assert!(raw > 90.0 && raw < 110.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod channel;
mod device;
mod error;
pub mod paradigm;
mod pipeline;
mod serialize;

pub use channel::{ChannelModel, TransferReport};
pub use device::{DeviceClass, EdgeDevice};
pub use error::{Result, SplitError};
pub use paradigm::{DeploymentAnalysis, DeploymentParadigm, MemoryFootprint, WorkloadProfile};
pub use pipeline::{PipelineTiming, SplitPipeline};
pub use serialize::{Precision, TensorCodec, WirePayload};
