//! A functional end-to-end run of the split deployment (Figure 1).
//!
//! [`SplitPipeline`] takes a backbone (executing on the "edge"), serializes
//! its output `Z_b`, simulates the transfer over a [`ChannelModel`], and then
//! runs each task head (executing on the "server") on the decoded
//! representation. This is the inference path a deployed MTL-Split system
//! would follow, and it is what the quickstart example and the integration
//! tests exercise.
//!
//! Every model reference is `&` — the pipeline drives the pure
//! [`Layer::infer`] path, so the same frozen backbone and heads can be run
//! from several pipelines (or threads) at once.

use mtlsplit_nn::{InferPlan, Layer};
use mtlsplit_tensor::Tensor;

use crate::channel::ChannelModel;
use crate::error::Result;
use crate::serialize::{Precision, TensorCodec, WirePayload};

/// Timing and size record of one pipeline invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTiming {
    /// Number of samples in the batch.
    pub batch: usize,
    /// Bytes of the raw input batch.
    pub input_bytes: usize,
    /// Bytes of the transmitted `Z_b` payload (including header).
    pub zb_wire_bytes: usize,
    /// Simulated transfer time of the `Z_b` payload in seconds.
    pub transfer_seconds: f64,
    /// Simulated transfer time the raw input would have needed (RoC), for
    /// comparison.
    pub roc_transfer_seconds: f64,
}

impl PipelineTiming {
    /// Compression ratio achieved by splitting at the backbone output:
    /// raw input bytes divided by transmitted bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.zb_wire_bytes == 0 {
            0.0
        } else {
            self.input_bytes as f64 / self.zb_wire_bytes as f64
        }
    }
}

/// The edge→channel→server execution harness.
#[derive(Debug, Clone)]
pub struct SplitPipeline {
    channel: ChannelModel,
    codec: TensorCodec,
}

impl SplitPipeline {
    /// Creates a pipeline over the given channel using lossless `f32`
    /// payloads.
    pub fn new(channel: ChannelModel) -> Self {
        Self {
            channel,
            codec: TensorCodec::new(Precision::Float32),
        }
    }

    /// Creates a pipeline with an explicit wire precision.
    pub fn with_precision(channel: ChannelModel, precision: Precision) -> Self {
        Self {
            channel,
            codec: TensorCodec::new(precision),
        }
    }

    /// The channel model used for transfer simulation.
    pub fn channel(&self) -> &ChannelModel {
        &self.channel
    }

    /// Runs the edge half: an immutable backbone inference pass plus
    /// serialization.
    ///
    /// # Errors
    ///
    /// Propagates any error from the backbone inference pass.
    pub fn edge_forward(
        &self,
        backbone: &dyn Layer,
        input: &Tensor,
    ) -> Result<(WirePayload, Tensor)> {
        let features = backbone.infer(input)?;
        let payload = self.codec.encode(&features);
        Ok((payload, features))
    }

    /// [`SplitPipeline::edge_forward`] on the planned inference runtime: the
    /// backbone pass draws every intermediate from `plan`'s reusable arena
    /// (zero steady-state allocations inside the forward) and produces
    /// bit-identical features. Recycle the returned tensor via
    /// [`InferPlan::recycle`] once consumed.
    ///
    /// # Errors
    ///
    /// Propagates any error from the backbone inference pass.
    pub fn edge_forward_with(
        &self,
        backbone: &dyn Layer,
        input: &Tensor,
        plan: &mut InferPlan,
    ) -> Result<(WirePayload, Tensor)> {
        let features = plan.run(backbone, input)?;
        let payload = self.codec.encode(&features);
        Ok((payload, features))
    }

    /// Runs the server half: decodes `Z_b` and evaluates every head through
    /// `&self` inference.
    ///
    /// # Errors
    ///
    /// Returns an error if the payload is malformed or a head rejects the
    /// decoded representation.
    pub fn remote_forward(
        &self,
        heads: &[&dyn Layer],
        payload: &WirePayload,
    ) -> Result<Vec<Tensor>> {
        let features = self.codec.decode(payload)?;
        heads
            .iter()
            .map(|head| head.infer(&features).map_err(Into::into))
            .collect()
    }

    /// [`SplitPipeline::remote_forward`] on the planned inference runtime:
    /// every head runs through its fused, arena-backed path. Recycle the
    /// returned tensors via [`InferPlan::recycle`] once consumed.
    ///
    /// # Errors
    ///
    /// Returns an error if the payload is malformed or a head rejects the
    /// decoded representation.
    pub fn remote_forward_with(
        &self,
        heads: &[&dyn Layer],
        payload: &WirePayload,
        plan: &mut InferPlan,
    ) -> Result<Vec<Tensor>> {
        let features = self.codec.decode(payload)?;
        heads
            .iter()
            .map(|head| plan.run(*head, &features).map_err(Into::into))
            .collect()
    }

    /// Runs the full pipeline: edge forward, simulated transfer, remote
    /// heads. Returns the per-task outputs and the timing record.
    ///
    /// # Errors
    ///
    /// Propagates model and payload errors.
    pub fn run(
        &self,
        backbone: &dyn Layer,
        heads: &[&dyn Layer],
        input: &Tensor,
    ) -> Result<(Vec<Tensor>, PipelineTiming)> {
        let mut plan = InferPlan::new();
        self.run_with(backbone, heads, input, &mut plan)
    }

    /// [`SplitPipeline::run`] on a caller-owned [`InferPlan`]: both halves
    /// draw from the plan's reusable arena, so a pipeline driven repeatedly
    /// (a benchmark loop, an edge device streaming frames) stops allocating
    /// after its first frame. Outputs are bit-identical to [`run`].
    ///
    /// # Errors
    ///
    /// Propagates model and payload errors.
    ///
    /// [`run`]: SplitPipeline::run
    pub fn run_with(
        &self,
        backbone: &dyn Layer,
        heads: &[&dyn Layer],
        input: &Tensor,
        plan: &mut InferPlan,
    ) -> Result<(Vec<Tensor>, PipelineTiming)> {
        let (payload, features) = self.edge_forward_with(backbone, input, plan)?;
        plan.recycle(features);
        let zb_wire_bytes = payload.wire_bytes();
        let input_bytes = input.len() * std::mem::size_of::<f32>();
        let timing = PipelineTiming {
            batch: input.dims().first().copied().unwrap_or(0),
            input_bytes,
            zb_wire_bytes,
            transfer_seconds: self.channel.transfer_time_bytes(zb_wire_bytes),
            roc_transfer_seconds: self.channel.transfer_time_bytes(input_bytes),
        };
        let outputs = self.remote_forward_with(heads, &payload, plan)?;
        Ok((outputs, timing))
    }

    /// Runs the pipeline split at an arbitrary depth: `edge` is the backbone
    /// prefix that runs on the device, `tail` the remaining backbone suffix
    /// the server must finish before its heads (`None` when the cut is at
    /// the classic pre-head boundary). The wire payload is the activation at
    /// the cut, whatever its rank.
    ///
    /// # Errors
    ///
    /// Propagates model and payload errors.
    pub fn run_split(
        &self,
        edge: &dyn Layer,
        tail: Option<&dyn Layer>,
        heads: &[&dyn Layer],
        input: &Tensor,
    ) -> Result<(Vec<Tensor>, PipelineTiming)> {
        let mut plan = InferPlan::new();
        self.run_split_with(edge, tail, heads, input, &mut plan)
    }

    /// [`SplitPipeline::run_split`] on a caller-owned [`InferPlan`].
    ///
    /// # Errors
    ///
    /// Propagates model and payload errors.
    pub fn run_split_with(
        &self,
        edge: &dyn Layer,
        tail: Option<&dyn Layer>,
        heads: &[&dyn Layer],
        input: &Tensor,
        plan: &mut InferPlan,
    ) -> Result<(Vec<Tensor>, PipelineTiming)> {
        let (payload, boundary) = self.edge_forward_with(edge, input, plan)?;
        plan.recycle(boundary);
        let zb_wire_bytes = payload.wire_bytes();
        let input_bytes = input.len() * std::mem::size_of::<f32>();
        let timing = PipelineTiming {
            batch: input.dims().first().copied().unwrap_or(0),
            input_bytes,
            zb_wire_bytes,
            transfer_seconds: self.channel.transfer_time_bytes(zb_wire_bytes),
            roc_transfer_seconds: self.channel.transfer_time_bytes(input_bytes),
        };
        let received = self.codec.decode(&payload)?;
        let features = match tail {
            Some(tail) => {
                let features = plan.run(tail, &received)?;
                plan.recycle(received);
                features
            }
            None => received,
        };
        let outputs: Vec<Tensor> = heads
            .iter()
            .map(|head| plan.run(*head, &features).map_err(Into::into))
            .collect::<Result<_>>()?;
        plan.recycle(features);
        Ok((outputs, timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlsplit_nn::{Flatten, Linear, Relu, Sequential};
    use mtlsplit_tensor::StdRng;

    fn toy_backbone(rng: &mut StdRng) -> Sequential {
        Sequential::new()
            .push(Flatten::new())
            .push(Linear::new(3 * 8 * 8, 16, rng))
            .push(Relu::new())
    }

    fn toy_head(classes: usize, rng: &mut StdRng) -> Sequential {
        Sequential::new().push(Linear::new(16, classes, rng))
    }

    #[test]
    fn full_pipeline_produces_one_output_per_head() {
        let mut rng = StdRng::seed_from(1);
        let backbone = toy_backbone(&mut rng);
        let head_a = toy_head(3, &mut rng);
        let head_b = toy_head(5, &mut rng);
        let pipeline = SplitPipeline::new(ChannelModel::gigabit());
        let x = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (outputs, timing) = pipeline.run(&backbone, &[&head_a, &head_b], &x).unwrap();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[0].dims(), &[4, 3]);
        assert_eq!(outputs[1].dims(), &[4, 5]);
        assert_eq!(timing.batch, 4);
    }

    #[test]
    fn split_outputs_match_a_monolithic_run() {
        // Splitting with a lossless codec must not change the predictions.
        let mut rng = StdRng::seed_from(2);
        let backbone = toy_backbone(&mut rng);
        let head = toy_head(4, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);

        let features = backbone.infer(&x).unwrap();
        let direct = head.infer(&features).unwrap();

        let pipeline = SplitPipeline::new(ChannelModel::gigabit());
        let (outputs, _) = pipeline.run(&backbone, &[&head], &x).unwrap();
        assert!(outputs[0].allclose(&direct, 1e-6));
    }

    #[test]
    fn transmitted_payload_is_smaller_than_the_input() {
        let mut rng = StdRng::seed_from(3);
        let backbone = toy_backbone(&mut rng);
        let head = toy_head(2, &mut rng);
        let pipeline = SplitPipeline::new(ChannelModel::gigabit());
        let x = Tensor::randn(&[8, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (_, timing) = pipeline.run(&backbone, &[&head], &x).unwrap();
        assert!(timing.compression_ratio() > 2.0);
        assert!(timing.transfer_seconds < timing.roc_transfer_seconds);
    }

    #[test]
    fn quantised_pipeline_shrinks_the_payload_further() {
        let mut rng = StdRng::seed_from(4);
        let backbone = toy_backbone(&mut rng);
        let head = toy_head(2, &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let full = SplitPipeline::new(ChannelModel::gigabit());
        let (_, t_full) = full.run(&backbone, &[&head], &x).unwrap();
        let quant = SplitPipeline::with_precision(ChannelModel::gigabit(), Precision::Quant8);
        let (_, t_quant) = quant.run(&backbone, &[&head], &x).unwrap();
        assert!(t_quant.zb_wire_bytes < t_full.zb_wire_bytes);
    }

    #[test]
    fn edge_and_remote_halves_can_run_separately() {
        let mut rng = StdRng::seed_from(5);
        let backbone = toy_backbone(&mut rng);
        let head = toy_head(3, &mut rng);
        let pipeline = SplitPipeline::new(ChannelModel::wifi());
        let x = Tensor::randn(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (payload, features) = pipeline.edge_forward(&backbone, &x).unwrap();
        assert_eq!(features.dims(), &[1, 16]);
        let outputs = pipeline.remote_forward(&[&head], &payload).unwrap();
        assert_eq!(outputs[0].dims(), &[1, 3]);
    }

    #[test]
    fn run_split_with_a_tail_matches_the_classic_cut_bitwise() {
        // Cut the toy backbone one layer early: the Relu moves to the server
        // tail. With a lossless codec the outputs must equal the classic
        // pre-head cut bit for bit.
        let mut rng = StdRng::seed_from(7);
        let mut edge = toy_backbone(&mut rng);
        let tail = edge.split_off(2);
        let head = toy_head(3, &mut StdRng::seed_from(8));
        let x = Tensor::randn(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);

        let mut full = toy_backbone(&mut StdRng::seed_from(7));
        let _ = full.split_off(full.len()); // no-op cut: same seed, same net
        let pipeline = SplitPipeline::new(ChannelModel::wifi());
        let (expected, t_classic) = pipeline.run(&full, &[&head], &x).unwrap();

        let (outputs, t_split) = pipeline
            .run_split(&edge, Some(&tail as &dyn Layer), &[&head], &x)
            .unwrap();
        assert_eq!(outputs, expected);
        // The early cut transmits the pre-Relu activation: same element
        // count here, so wire bytes match; timing fields stay populated.
        assert_eq!(t_split.batch, t_classic.batch);
        assert!(t_split.zb_wire_bytes > 0);

        // No tail = the classic cut, through the run_split entry point.
        let (outputs, _) = pipeline.run_split(&full, None, &[&head], &x).unwrap();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn a_shared_frozen_model_serves_two_pipelines_concurrently() {
        // The &self inference path lets one frozen backbone/head pair be
        // driven from several threads at once with no locking.
        let mut rng = StdRng::seed_from(6);
        let backbone = std::sync::Arc::new(toy_backbone(&mut rng));
        let head = std::sync::Arc::new(toy_head(3, &mut rng));
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let reference = {
            let pipeline = SplitPipeline::new(ChannelModel::gigabit());
            let (outputs, _) = pipeline
                .run(backbone.as_ref(), &[head.as_ref()], &x)
                .unwrap();
            outputs
        };
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let backbone = std::sync::Arc::clone(&backbone);
                let head = std::sync::Arc::clone(&head);
                let x = x.clone();
                let expected = reference.clone();
                std::thread::spawn(move || {
                    let pipeline = SplitPipeline::new(ChannelModel::gigabit());
                    let (outputs, _) = pipeline
                        .run(backbone.as_ref(), &[head.as_ref()], &x)
                        .unwrap();
                    assert_eq!(outputs, expected);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
