//! The communication channel between the edge device and the remote server.

use crate::error::{Result, SplitError};

/// An analytical model of the edge↔server network link.
///
/// Transfer time for a payload of `b` bytes is
/// `propagation_delay + b * 8 / (bandwidth * (1 - degradation))`, i.e. a
/// fixed per-message latency plus a serialisation term over the effective
/// bandwidth. `degradation` captures the "degraded channel conditions" the
/// paper motivates split computing with: a congested or lossy link retains
/// only part of its nominal bandwidth (retransmissions, contention).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelModel {
    /// Nominal bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation / protocol delay per message, in seconds.
    pub propagation_delay_s: f64,
    /// Fraction of the nominal bandwidth lost to degradation, in `[0, 1)`.
    pub degradation: f64,
}

impl ChannelModel {
    /// Creates a channel model.
    ///
    /// # Errors
    ///
    /// Returns an error if the bandwidth is not positive, the delay is
    /// negative, or the degradation is outside `[0, 1)`.
    pub fn new(bandwidth_bps: f64, propagation_delay_s: f64, degradation: f64) -> Result<Self> {
        if !(bandwidth_bps.is_finite() && bandwidth_bps > 0.0) {
            return Err(SplitError::InvalidConfig {
                reason: format!("bandwidth {bandwidth_bps} must be positive"),
            });
        }
        if !(propagation_delay_s.is_finite() && propagation_delay_s >= 0.0) {
            return Err(SplitError::InvalidConfig {
                reason: format!("propagation delay {propagation_delay_s} must be non-negative"),
            });
        }
        if !(0.0..1.0).contains(&degradation) {
            return Err(SplitError::InvalidConfig {
                reason: format!("degradation {degradation} must be in [0, 1)"),
            });
        }
        Ok(Self {
            bandwidth_bps,
            propagation_delay_s,
            degradation,
        })
    }

    /// The gigabit Ethernet link assumed by the paper's RoC analysis.
    pub fn gigabit() -> Self {
        Self {
            bandwidth_bps: 1e9,
            propagation_delay_s: 1e-3,
            degradation: 0.0,
        }
    }

    /// A typical 802.11n-class wireless link.
    pub fn wifi() -> Self {
        Self {
            bandwidth_bps: 100e6,
            propagation_delay_s: 5e-3,
            degradation: 0.1,
        }
    }

    /// A 4G/LTE-class uplink, the kind of constrained mobile channel where
    /// transmitting raw frames is clearly infeasible.
    pub fn lte_uplink() -> Self {
        Self {
            bandwidth_bps: 20e6,
            propagation_delay_s: 30e-3,
            degradation: 0.2,
        }
    }

    /// Returns this channel with the given degradation fraction.
    ///
    /// # Errors
    ///
    /// Returns an error if `degradation` is outside `[0, 1)`.
    pub fn with_degradation(&self, degradation: f64) -> Result<Self> {
        Self::new(self.bandwidth_bps, self.propagation_delay_s, degradation)
    }

    /// Effective bandwidth in bits per second after degradation.
    pub fn effective_bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps * (1.0 - self.degradation)
    }

    /// Time in seconds to transfer a single payload of `bytes` bytes.
    pub fn transfer_time_bytes(&self, bytes: usize) -> f64 {
        self.propagation_delay_s + (bytes as f64 * 8.0) / self.effective_bandwidth_bps()
    }

    /// Simulates transferring `count` payloads of `bytes_each` bytes
    /// back-to-back and returns the aggregate report.
    pub fn transfer_batch(&self, bytes_each: usize, count: usize) -> TransferReport {
        let per_payload = self.transfer_time_bytes(bytes_each);
        TransferReport {
            payloads: count,
            bytes_total: bytes_each * count,
            seconds_total: per_payload * count as f64,
            seconds_per_payload: per_payload,
        }
    }
}

/// Aggregate result of transferring a batch of payloads over a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// Number of payloads transferred.
    pub payloads: usize,
    /// Total bytes moved.
    pub bytes_total: usize,
    /// Total wall-clock seconds.
    pub seconds_total: f64,
    /// Seconds per payload.
    pub seconds_per_payload: f64,
}

impl TransferReport {
    /// Achieved goodput in megabytes per second.
    pub fn goodput_mb_per_s(&self) -> f64 {
        if self.seconds_total <= 0.0 {
            0.0
        } else {
            self.bytes_total as f64 / 1_000_000.0 / self.seconds_total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_roc_numbers_are_reproduced() {
        // 100 raw inputs of ~115 MB over gigabit: ~98 s (Section 4.2).
        let channel = ChannelModel::gigabit();
        let raw = channel.transfer_batch(115_000_000, 100);
        assert!(
            raw.seconds_total > 88.0 && raw.seconds_total < 105.0,
            "raw transfer took {}",
            raw.seconds_total
        );
        // 100 Z_b payloads of ~1.5 MB: ~12 s in the paper.
        let zb = channel.transfer_batch(1_500_000, 100);
        assert!(zb.seconds_total > 1.0 && zb.seconds_total < 15.0);
        // The relative saving is the claim that matters: ~87 %.
        let saving = 1.0 - zb.seconds_total / raw.seconds_total;
        assert!(saving > 0.85, "saving {saving}");
    }

    #[test]
    fn degradation_reduces_effective_bandwidth() {
        let clean = ChannelModel::gigabit();
        let degraded = clean.with_degradation(0.5).unwrap();
        assert!(degraded.effective_bandwidth_bps() < clean.effective_bandwidth_bps());
        assert!(degraded.transfer_time_bytes(1_000_000) > clean.transfer_time_bytes(1_000_000));
    }

    #[test]
    fn transfer_time_includes_propagation_delay() {
        let channel = ChannelModel::new(1e9, 0.5, 0.0).unwrap();
        // Even a zero-byte message pays the propagation delay.
        assert!((channel.transfer_time_bytes(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(ChannelModel::new(0.0, 0.0, 0.0).is_err());
        assert!(ChannelModel::new(1e6, -1.0, 0.0).is_err());
        assert!(ChannelModel::new(1e6, 0.0, 1.0).is_err());
        assert!(ChannelModel::gigabit().with_degradation(1.5).is_err());
    }

    #[test]
    fn goodput_reflects_payload_size() {
        let channel = ChannelModel::wifi();
        let big = channel.transfer_batch(10_000_000, 10);
        let small = channel.transfer_batch(1_000, 10);
        // Large payloads amortise the per-message delay, so goodput is higher.
        assert!(big.goodput_mb_per_s() > small.goodput_mb_per_s());
    }

    #[test]
    fn presets_are_ordered_by_capacity() {
        assert!(
            ChannelModel::gigabit().effective_bandwidth_bps()
                > ChannelModel::wifi().effective_bandwidth_bps()
        );
        assert!(
            ChannelModel::wifi().effective_bandwidth_bps()
                > ChannelModel::lte_uplink().effective_bandwidth_bps()
        );
    }
}
