//! Analytical edge-device model.

use crate::error::{Result, SplitError};

/// Broad class of a compute node in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// A resource-constrained edge board (Jetson-Nano-like).
    Edge,
    /// A workstation or datacentre server (RTX-3090-class).
    Server,
}

/// An analytical model of a compute node: how much model state it can hold
/// and how fast it executes multiply-accumulate work.
///
/// The paper's LoC feasibility argument is purely a memory argument ("the
/// only feasible implementation on the Jetson Nano is restricted to
/// MobileNetV3"), so memory capacity is the primary attribute; the FLOP rate
/// supports coarse compute-latency estimates for end-to-end comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDevice {
    /// Human-readable device name.
    pub name: String,
    /// Device class.
    pub class: DeviceClass,
    /// Usable memory in bytes.
    pub memory_bytes: usize,
    /// Sustained throughput in floating-point operations per second.
    pub flops_per_second: f64,
}

impl EdgeDevice {
    /// Creates a device model.
    ///
    /// # Errors
    ///
    /// Returns an error if memory or throughput is zero/non-positive.
    pub fn new(
        name: impl Into<String>,
        class: DeviceClass,
        memory_bytes: usize,
        flops_per_second: f64,
    ) -> Result<Self> {
        if memory_bytes == 0 {
            return Err(SplitError::InvalidConfig {
                reason: "device memory must be positive".to_string(),
            });
        }
        if !(flops_per_second.is_finite() && flops_per_second > 0.0) {
            return Err(SplitError::InvalidConfig {
                reason: format!("flops/s {flops_per_second} must be positive"),
            });
        }
        Ok(Self {
            name: name.into(),
            class,
            memory_bytes,
            flops_per_second,
        })
    }

    /// The NVIDIA Jetson Nano (4 GB) the paper deploys on.
    ///
    /// The usable memory is set below the nominal 4 GB because the OS and
    /// runtime reserve a share of the unified memory.
    pub fn jetson_nano() -> Self {
        Self {
            name: "NVIDIA Jetson Nano (4 GB)".to_string(),
            class: DeviceClass::Edge,
            memory_bytes: 4_000_000_000,
            flops_per_second: 4.7e11, // ~470 GFLOPS FP16-ish envelope
        }
    }

    /// An RTX-3090-class training/inference server.
    pub fn workstation_server() -> Self {
        Self {
            name: "RTX 3090 server".to_string(),
            class: DeviceClass::Server,
            memory_bytes: 24_000_000_000,
            flops_per_second: 3.5e13,
        }
    }

    /// Whether a deployment needing `required_bytes` of model + activation
    /// state fits on this device.
    pub fn fits(&self, required_bytes: usize) -> bool {
        required_bytes <= self.memory_bytes
    }

    /// Checks that a deployment fits, returning a descriptive error if not.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::InsufficientMemory`] when the requirement
    /// exceeds the device capacity.
    pub fn check_fits(&self, required_bytes: usize) -> Result<()> {
        if self.fits(required_bytes) {
            Ok(())
        } else {
            Err(SplitError::InsufficientMemory {
                required: required_bytes,
                available: self.memory_bytes,
            })
        }
    }

    /// Estimated time in seconds to execute `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops.max(0.0) / self.flops_per_second
    }

    /// Fraction of device memory a deployment would occupy.
    pub fn utilisation(&self, required_bytes: usize) -> f64 {
        required_bytes as f64 / self.memory_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_nano_has_four_gigabytes() {
        let nano = EdgeDevice::jetson_nano();
        assert_eq!(nano.memory_bytes, 4_000_000_000);
        assert_eq!(nano.class, DeviceClass::Edge);
    }

    #[test]
    fn fits_compares_against_capacity() {
        let nano = EdgeDevice::jetson_nano();
        // The paper's LoC estimate for EfficientNet on a 2-task workload is
        // ~6.9 GB, which does not fit; MobileNetV3's ~1.5 GB does.
        assert!(!nano.fits(6_900_000_000));
        assert!(nano.fits(1_500_000_000));
        assert!(nano.check_fits(6_900_000_000).is_err());
        assert!(nano.check_fits(1_500_000_000).is_ok());
    }

    #[test]
    fn server_is_bigger_and_faster_than_edge() {
        let nano = EdgeDevice::jetson_nano();
        let server = EdgeDevice::workstation_server();
        assert!(server.memory_bytes > nano.memory_bytes);
        assert!(server.flops_per_second > nano.flops_per_second);
        assert!(server.compute_time(1e12) < nano.compute_time(1e12));
    }

    #[test]
    fn utilisation_is_a_fraction_of_capacity() {
        let nano = EdgeDevice::jetson_nano();
        assert!((nano.utilisation(2_000_000_000) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_devices_are_rejected() {
        assert!(EdgeDevice::new("x", DeviceClass::Edge, 0, 1.0).is_err());
        assert!(EdgeDevice::new("x", DeviceClass::Edge, 100, 0.0).is_err());
        assert!(EdgeDevice::new("x", DeviceClass::Edge, 100, f64::NAN).is_err());
    }

    #[test]
    fn compute_time_scales_linearly() {
        let nano = EdgeDevice::jetson_nano();
        let t1 = nano.compute_time(1e9);
        let t2 = nano.compute_time(2e9);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        assert_eq!(nano.compute_time(-5.0), 0.0);
    }
}
