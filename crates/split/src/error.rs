//! Error type for the split-computing substrate.

use std::fmt;

use mtlsplit_nn::NnError;
use mtlsplit_tensor::TensorError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SplitError>;

/// Errors raised by channel/device modelling, serialization and the split
/// pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A network-level operation failed (forward/backward through a model
    /// half).
    Network(NnError),
    /// A configuration value is invalid (zero bandwidth, loss probability
    /// outside `[0, 1)`, ...).
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// A serialized payload could not be decoded.
    MalformedPayload {
        /// Description of the problem.
        reason: String,
    },
    /// A model does not fit on the target edge device.
    InsufficientMemory {
        /// Bytes required by the deployment.
        required: usize,
        /// Bytes available on the device.
        available: usize,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::Tensor(err) => write!(f, "tensor operation failed: {err}"),
            SplitError::Network(err) => write!(f, "network operation failed: {err}"),
            SplitError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SplitError::MalformedPayload { reason } => write!(f, "malformed payload: {reason}"),
            SplitError::InsufficientMemory {
                required,
                available,
            } => write!(
                f,
                "deployment needs {required} bytes but the device has {available}"
            ),
        }
    }
}

impl std::error::Error for SplitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SplitError::Tensor(err) => Some(err),
            SplitError::Network(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TensorError> for SplitError {
    fn from(err: TensorError) -> Self {
        SplitError::Tensor(err)
    }
}

impl From<NnError> for SplitError {
    fn from(err: NnError) -> Self {
        SplitError::Network(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_and_network_errors() {
        let t: SplitError = TensorError::EmptyTensor { op: "max" }.into();
        assert!(matches!(t, SplitError::Tensor(_)));
        let n: SplitError = NnError::MissingForwardCache { layer: "Linear" }.into();
        assert!(matches!(n, SplitError::Network(_)));
    }

    #[test]
    fn memory_error_reports_both_sides() {
        let err = SplitError::InsufficientMemory {
            required: 100,
            available: 50,
        };
        let text = err.to_string();
        assert!(text.contains("100") && text.contains("50"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SplitError>();
    }
}
