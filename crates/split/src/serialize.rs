//! Serialization of the shared representation `Z_b` for transmission.
//!
//! The flattened backbone output must cross the network between the edge
//! device and the server. [`TensorCodec`] turns a tensor into a
//! [`WirePayload`] — either full `f32` precision or 8-bit min/max quantised,
//! the standard cheap compression used by split-computing systems — and back.

use mtlsplit_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SplitError};

/// Wire precision for transmitted activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 4 bytes per element, lossless.
    Float32,
    /// 1 byte per element, min/max affine quantisation.
    Quant8,
}

impl Precision {
    /// Bytes used per tensor element on the wire.
    pub fn bytes_per_element(&self) -> usize {
        match self {
            Precision::Float32 => 4,
            Precision::Quant8 => 1,
        }
    }
}

/// A serialized tensor ready to be "sent" over the simulated channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePayload {
    /// The original tensor dimensions.
    pub dims: Vec<usize>,
    /// Wire precision.
    pub precision: Precision,
    /// Quantisation minimum (unused for `Float32`).
    pub q_min: f32,
    /// Quantisation scale (unused for `Float32`).
    pub q_scale: f32,
    /// The encoded bytes.
    pub data: Vec<u8>,
}

impl WirePayload {
    /// Total size of the payload on the wire, including the small header.
    pub fn wire_bytes(&self) -> usize {
        // dims (8 bytes each) + precision tag + two f32 quantisation fields.
        self.data.len() + self.dims.len() * 8 + 1 + 8
    }
}

/// Encoder/decoder for transmitted tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TensorCodec {
    precision: Precision,
}

impl Default for Precision {
    fn default() -> Self {
        Precision::Float32
    }
}

impl TensorCodec {
    /// Creates a codec with the given wire precision.
    pub fn new(precision: Precision) -> Self {
        Self { precision }
    }

    /// The codec's wire precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Encodes a tensor into a wire payload.
    pub fn encode(&self, tensor: &Tensor) -> WirePayload {
        match self.precision {
            Precision::Float32 => {
                let mut data = Vec::with_capacity(tensor.len() * 4);
                for &v in tensor.as_slice() {
                    data.extend_from_slice(&v.to_le_bytes());
                }
                WirePayload {
                    dims: tensor.dims().to_vec(),
                    precision: Precision::Float32,
                    q_min: 0.0,
                    q_scale: 1.0,
                    data,
                }
            }
            Precision::Quant8 => {
                let min = tensor.min().unwrap_or(0.0);
                let max = tensor.max().unwrap_or(0.0);
                let scale = if (max - min).abs() < f32::EPSILON {
                    1.0
                } else {
                    (max - min) / 255.0
                };
                let data = tensor
                    .as_slice()
                    .iter()
                    .map(|&v| (((v - min) / scale).round().clamp(0.0, 255.0)) as u8)
                    .collect();
                WirePayload {
                    dims: tensor.dims().to_vec(),
                    precision: Precision::Quant8,
                    q_min: min,
                    q_scale: scale,
                    data,
                }
            }
        }
    }

    /// Decodes a wire payload back into a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::MalformedPayload`] if the byte count does not
    /// match the declared dimensions.
    pub fn decode(&self, payload: &WirePayload) -> Result<Tensor> {
        let elements: usize = payload.dims.iter().product();
        match payload.precision {
            Precision::Float32 => {
                if payload.data.len() != elements * 4 {
                    return Err(SplitError::MalformedPayload {
                        reason: format!(
                            "expected {} bytes for {:?}, got {}",
                            elements * 4,
                            payload.dims,
                            payload.data.len()
                        ),
                    });
                }
                let values: Vec<f32> = payload
                    .data
                    .chunks_exact(4)
                    .map(|chunk| f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
                    .collect();
                Ok(Tensor::from_vec(values, &payload.dims)?)
            }
            Precision::Quant8 => {
                if payload.data.len() != elements {
                    return Err(SplitError::MalformedPayload {
                        reason: format!(
                            "expected {} bytes for {:?}, got {}",
                            elements,
                            payload.dims,
                            payload.data.len()
                        ),
                    });
                }
                let values: Vec<f32> = payload
                    .data
                    .iter()
                    .map(|&b| payload.q_min + b as f32 * payload.q_scale)
                    .collect();
                Ok(Tensor::from_vec(values, &payload.dims)?)
            }
        }
    }

    /// The wire size in bytes of a tensor with `elements` elements under this
    /// codec, without actually encoding it.
    pub fn wire_bytes_for(&self, elements: usize, rank: usize) -> usize {
        elements * self.precision.bytes_per_element() + rank * 8 + 1 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlsplit_tensor::StdRng;

    #[test]
    fn float32_round_trip_is_exact() {
        let mut rng = StdRng::seed_from(1);
        let z = Tensor::randn(&[4, 32], 0.0, 2.0, &mut rng);
        let codec = TensorCodec::new(Precision::Float32);
        let payload = codec.encode(&z);
        let decoded = codec.decode(&payload).unwrap();
        assert_eq!(decoded, z);
    }

    #[test]
    fn quant8_round_trip_is_close_and_four_times_smaller() {
        let mut rng = StdRng::seed_from(2);
        let z = Tensor::randn(&[8, 64], 0.0, 1.0, &mut rng);
        let full = TensorCodec::new(Precision::Float32).encode(&z);
        let codec = TensorCodec::new(Precision::Quant8);
        let payload = codec.encode(&z);
        assert!(payload.data.len() * 4 == full.data.len());
        let decoded = codec.decode(&payload).unwrap();
        let range = z.max().unwrap() - z.min().unwrap();
        // Quantisation error bounded by one step.
        assert!(decoded.allclose(&z, range / 255.0 + 1e-6));
    }

    #[test]
    fn quant8_handles_constant_tensors() {
        let z = Tensor::full(&[3, 3], 0.7);
        let codec = TensorCodec::new(Precision::Quant8);
        let decoded = codec.decode(&codec.encode(&z)).unwrap();
        assert!(decoded.allclose(&z, 1e-6));
    }

    #[test]
    fn decode_rejects_truncated_payloads() {
        let z = Tensor::ones(&[2, 2]);
        let codec = TensorCodec::new(Precision::Float32);
        let mut payload = codec.encode(&z);
        payload.data.pop();
        assert!(matches!(
            codec.decode(&payload),
            Err(SplitError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn wire_bytes_estimate_matches_actual_payload() {
        let z = Tensor::ones(&[5, 7]);
        for precision in [Precision::Float32, Precision::Quant8] {
            let codec = TensorCodec::new(precision);
            let payload = codec.encode(&z);
            assert_eq!(payload.wire_bytes(), codec.wire_bytes_for(35, 2));
        }
    }

    #[test]
    fn default_codec_is_lossless() {
        assert_eq!(TensorCodec::default().precision(), Precision::Float32);
    }
}
