//! Serialization of the shared representation `Z_b` for transmission.
//!
//! The flattened backbone output must cross the network between the edge
//! device and the server. [`TensorCodec`] turns a tensor into a
//! [`WirePayload`] — either full `f32` precision or 8-bit min/max quantised,
//! the standard cheap compression used by split-computing systems — and back.

use mtlsplit_tensor::Tensor;

use crate::error::{Result, SplitError};

/// Wire precision for transmitted activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 4 bytes per element, lossless.
    #[default]
    Float32,
    /// 1 byte per element, min/max affine quantisation.
    Quant8,
}

impl Precision {
    /// Bytes used per tensor element on the wire.
    pub fn bytes_per_element(&self) -> usize {
        match self {
            Precision::Float32 => 4,
            Precision::Quant8 => 1,
        }
    }
}

/// A serialized tensor ready to be sent over the channel.
///
/// The payload has an exact, versionless binary form shared by the
/// analytical channel simulator and the real wire protocol in
/// `mtlsplit-serve`:
///
/// ```text
/// offset        size      field
/// 0             1         precision tag (0 = Float32, 1 = Quant8)
/// 1             1         rank r (at most MAX_RANK)
/// 2             4         q_min,   f32 little-endian
/// 6             4         q_scale, f32 little-endian
/// 10            8 * r     dims, u64 little-endian each
/// 10 + 8r       8         data length n, u64 little-endian
/// 18 + 8r       n         element data
/// ```
///
/// [`WirePayload::wire_bytes`] is therefore not an estimate: it equals
/// `WirePayload::encode().len()` exactly, so simulator accounting and the
/// framed transport agree byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePayload {
    /// The original tensor dimensions.
    pub dims: Vec<usize>,
    /// Wire precision.
    pub precision: Precision,
    /// Quantisation minimum (unused for `Float32`).
    pub q_min: f32,
    /// Quantisation scale (unused for `Float32`).
    pub q_scale: f32,
    /// The encoded bytes.
    pub data: Vec<u8>,
}

/// Fixed header bytes before the per-dimension fields: precision tag, rank,
/// `q_min`, `q_scale` and the trailing 8-byte data length.
const PAYLOAD_FIXED_BYTES: usize = 1 + 1 + 4 + 4 + 8;

impl WirePayload {
    /// Maximum tensor rank the wire format can carry.
    pub const MAX_RANK: usize = 8;

    /// Exact total size of the payload on the wire, including the header.
    ///
    /// Always equals `self.encode().len()`.
    pub fn wire_bytes(&self) -> usize {
        PAYLOAD_FIXED_BYTES + self.dims.len() * 8 + self.data.len()
    }

    /// Encodes the payload into its exact binary wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        self.encode_into(&mut out);
        out
    }

    /// Appends the binary wire form to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert!(
            self.dims.len() <= Self::MAX_RANK,
            "rank exceeds wire format"
        );
        out.push(match self.precision {
            Precision::Float32 => 0,
            Precision::Quant8 => 1,
        });
        out.push(self.dims.len() as u8);
        out.extend_from_slice(&self.q_min.to_le_bytes());
        out.extend_from_slice(&self.q_scale.to_le_bytes());
        for &d in &self.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.data);
    }

    /// Decodes a payload from its exact binary wire form.
    ///
    /// The whole buffer must be consumed: trailing bytes are rejected, so a
    /// framing layer can hand over a message body verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::MalformedPayload`] on truncated buffers, unknown
    /// precision tags, excessive rank, or data lengths that disagree with the
    /// declared dimensions.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let malformed = |reason: String| SplitError::MalformedPayload { reason };
        if bytes.len() < PAYLOAD_FIXED_BYTES {
            return Err(malformed(format!(
                "payload header needs at least {PAYLOAD_FIXED_BYTES} bytes, got {}",
                bytes.len()
            )));
        }
        let precision = match bytes[0] {
            0 => Precision::Float32,
            1 => Precision::Quant8,
            tag => return Err(malformed(format!("unknown precision tag {tag}"))),
        };
        let rank = bytes[1] as usize;
        if rank > Self::MAX_RANK {
            return Err(malformed(format!(
                "rank {rank} exceeds the wire maximum {}",
                Self::MAX_RANK
            )));
        }
        let q_min = f32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        let q_scale = f32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
        let dims_end = 10 + rank * 8;
        if bytes.len() < dims_end + 8 {
            return Err(malformed(format!(
                "payload truncated inside the header: rank {rank} needs {} bytes, got {}",
                dims_end + 8,
                bytes.len()
            )));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut elements: usize = 1;
        for i in 0..rank {
            let start = 10 + i * 8;
            let raw = u64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"));
            let dim = usize::try_from(raw)
                .map_err(|_| malformed(format!("dimension {raw} does not fit in usize")))?;
            elements = elements
                .checked_mul(dim)
                .ok_or_else(|| malformed(format!("element count overflows with dims {dims:?}")))?;
            dims.push(dim);
        }
        let data_len_raw =
            u64::from_le_bytes(bytes[dims_end..dims_end + 8].try_into().expect("8 bytes"));
        let data_len = usize::try_from(data_len_raw)
            .map_err(|_| malformed(format!("data length {data_len_raw} does not fit in usize")))?;
        let expected = elements
            .checked_mul(precision.bytes_per_element())
            .ok_or_else(|| malformed(format!("byte count overflows for dims {dims:?}")))?;
        if data_len != expected {
            return Err(malformed(format!(
                "declared data length {data_len} disagrees with dims {dims:?} at {precision:?} (expected {expected})"
            )));
        }
        let body = &bytes[dims_end + 8..];
        if body.len() != data_len {
            return Err(malformed(format!(
                "payload body has {} bytes, header declares {data_len}",
                body.len()
            )));
        }
        Ok(Self {
            dims,
            precision,
            q_min,
            q_scale,
            data: body.to_vec(),
        })
    }
}

/// Encoder/decoder for transmitted tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TensorCodec {
    precision: Precision,
}

impl TensorCodec {
    /// Creates a codec with the given wire precision.
    pub fn new(precision: Precision) -> Self {
        Self { precision }
    }

    /// The codec's wire precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Encodes a tensor into a wire payload.
    pub fn encode(&self, tensor: &Tensor) -> WirePayload {
        match self.precision {
            Precision::Float32 => {
                let mut data = Vec::with_capacity(tensor.len() * 4);
                for &v in tensor.as_slice() {
                    data.extend_from_slice(&v.to_le_bytes());
                }
                WirePayload {
                    dims: tensor.dims().to_vec(),
                    precision: Precision::Float32,
                    q_min: 0.0,
                    q_scale: 1.0,
                    data,
                }
            }
            Precision::Quant8 => {
                let min = tensor.min().unwrap_or(0.0);
                let max = tensor.max().unwrap_or(0.0);
                let scale = if (max - min).abs() < f32::EPSILON {
                    1.0
                } else {
                    (max - min) / 255.0
                };
                let data = tensor
                    .as_slice()
                    .iter()
                    .map(|&v| (((v - min) / scale).round().clamp(0.0, 255.0)) as u8)
                    .collect();
                WirePayload {
                    dims: tensor.dims().to_vec(),
                    precision: Precision::Quant8,
                    q_min: min,
                    q_scale: scale,
                    data,
                }
            }
        }
    }

    /// Decodes a wire payload back into a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`SplitError::MalformedPayload`] if the byte count does not
    /// match the declared dimensions.
    pub fn decode(&self, payload: &WirePayload) -> Result<Tensor> {
        let elements: usize = payload.dims.iter().product();
        match payload.precision {
            Precision::Float32 => {
                if payload.data.len() != elements * 4 {
                    return Err(SplitError::MalformedPayload {
                        reason: format!(
                            "expected {} bytes for {:?}, got {}",
                            elements * 4,
                            payload.dims,
                            payload.data.len()
                        ),
                    });
                }
                let values: Vec<f32> = payload
                    .data
                    .chunks_exact(4)
                    .map(|chunk| f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
                    .collect();
                Ok(Tensor::from_vec(values, &payload.dims)?)
            }
            Precision::Quant8 => {
                if payload.data.len() != elements {
                    return Err(SplitError::MalformedPayload {
                        reason: format!(
                            "expected {} bytes for {:?}, got {}",
                            elements,
                            payload.dims,
                            payload.data.len()
                        ),
                    });
                }
                let values: Vec<f32> = payload
                    .data
                    .iter()
                    .map(|&b| payload.q_min + b as f32 * payload.q_scale)
                    .collect();
                Ok(Tensor::from_vec(values, &payload.dims)?)
            }
        }
    }

    /// The exact wire size in bytes of a tensor with `elements` elements and
    /// the given rank under this codec, without actually encoding it.
    pub fn wire_bytes_for(&self, elements: usize, rank: usize) -> usize {
        elements * self.precision.bytes_per_element() + PAYLOAD_FIXED_BYTES + rank * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlsplit_tensor::StdRng;

    #[test]
    fn float32_round_trip_is_exact() {
        let mut rng = StdRng::seed_from(1);
        let z = Tensor::randn(&[4, 32], 0.0, 2.0, &mut rng);
        let codec = TensorCodec::new(Precision::Float32);
        let payload = codec.encode(&z);
        let decoded = codec.decode(&payload).unwrap();
        assert_eq!(decoded, z);
    }

    #[test]
    fn quant8_round_trip_is_close_and_four_times_smaller() {
        let mut rng = StdRng::seed_from(2);
        let z = Tensor::randn(&[8, 64], 0.0, 1.0, &mut rng);
        let full = TensorCodec::new(Precision::Float32).encode(&z);
        let codec = TensorCodec::new(Precision::Quant8);
        let payload = codec.encode(&z);
        assert!(payload.data.len() * 4 == full.data.len());
        let decoded = codec.decode(&payload).unwrap();
        let range = z.max().unwrap() - z.min().unwrap();
        // Quantisation error bounded by one step.
        assert!(decoded.allclose(&z, range / 255.0 + 1e-6));
    }

    #[test]
    fn quant8_handles_constant_tensors() {
        let z = Tensor::full(&[3, 3], 0.7);
        let codec = TensorCodec::new(Precision::Quant8);
        let decoded = codec.decode(&codec.encode(&z)).unwrap();
        assert!(decoded.allclose(&z, 1e-6));
    }

    #[test]
    fn decode_rejects_truncated_payloads() {
        let z = Tensor::ones(&[2, 2]);
        let codec = TensorCodec::new(Precision::Float32);
        let mut payload = codec.encode(&z);
        payload.data.pop();
        assert!(matches!(
            codec.decode(&payload),
            Err(SplitError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn wire_bytes_estimate_matches_actual_payload() {
        let z = Tensor::ones(&[5, 7]);
        for precision in [Precision::Float32, Precision::Quant8] {
            let codec = TensorCodec::new(precision);
            let payload = codec.encode(&z);
            assert_eq!(payload.wire_bytes(), codec.wire_bytes_for(35, 2));
        }
    }

    #[test]
    fn default_codec_is_lossless() {
        assert_eq!(TensorCodec::default().precision(), Precision::Float32);
    }

    #[test]
    fn encoded_length_is_exactly_wire_bytes() {
        let mut rng = StdRng::seed_from(6);
        let z = Tensor::randn(&[3, 4, 5], 0.0, 1.0, &mut rng);
        for precision in [Precision::Float32, Precision::Quant8] {
            let payload = TensorCodec::new(precision).encode(&z);
            let encoded = payload.encode();
            assert_eq!(payload.wire_bytes(), encoded.len(), "{precision:?}");
        }
    }

    #[test]
    fn byte_level_round_trip_preserves_the_payload() {
        let mut rng = StdRng::seed_from(7);
        let z = Tensor::randn(&[2, 9], -1.0, 2.0, &mut rng);
        for precision in [Precision::Float32, Precision::Quant8] {
            let codec = TensorCodec::new(precision);
            let payload = codec.encode(&z);
            let restored = WirePayload::decode(&payload.encode()).unwrap();
            assert_eq!(restored, payload);
            let decoded = codec.decode(&restored).unwrap();
            let step = match precision {
                Precision::Float32 => 1e-7,
                Precision::Quant8 => (z.max().unwrap() - z.min().unwrap()) / 255.0 + 1e-6,
            };
            assert!(decoded.allclose(&z, step));
        }
    }

    #[test]
    fn decode_rejects_corrupt_and_truncated_buffers() {
        let payload = TensorCodec::new(Precision::Quant8).encode(&Tensor::ones(&[2, 3]));
        let good = payload.encode();
        assert!(WirePayload::decode(&good).is_ok());

        // Empty and short buffers.
        for cut in [0, 1, 9, good.len() - 1] {
            assert!(
                matches!(
                    WirePayload::decode(&good[..cut]),
                    Err(SplitError::MalformedPayload { .. })
                ),
                "truncation to {cut} bytes must be rejected"
            );
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(
            WirePayload::decode(&long),
            Err(SplitError::MalformedPayload { .. })
        ));
        // Unknown precision tag.
        let mut bad_tag = good.clone();
        bad_tag[0] = 7;
        assert!(matches!(
            WirePayload::decode(&bad_tag),
            Err(SplitError::MalformedPayload { .. })
        ));
        // Rank beyond the wire maximum.
        let mut bad_rank = good.clone();
        bad_rank[1] = WirePayload::MAX_RANK as u8 + 1;
        assert!(matches!(
            WirePayload::decode(&bad_rank),
            Err(SplitError::MalformedPayload { .. })
        ));
        // Data length that disagrees with the dims.
        let mut bad_len = good.clone();
        let len_offset = 10 + 2 * 8;
        bad_len[len_offset] ^= 0xFF;
        assert!(matches!(
            WirePayload::decode(&bad_len),
            Err(SplitError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes() {
        // A cheap fuzz pass: random buffers must produce errors, not panics.
        let mut rng = StdRng::seed_from(8);
        for _ in 0..500 {
            let len = rng.below(64);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            let _ = WirePayload::decode(&bytes);
        }
    }
}
