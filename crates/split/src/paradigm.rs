//! Deployment-paradigm accounting: Local-only, Remote-only and Split
//! Computing, as compared in Section 4.2 of the paper.

use crate::channel::{ChannelModel, TransferReport};
use crate::device::EdgeDevice;
use crate::error::{Result, SplitError};

/// The three distributed-deep-learning paradigms the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentParadigm {
    /// Everything runs on the edge device (`LoC`): one full network per task.
    LocalOnly,
    /// Everything runs on the server (`RoC`): the raw input crosses the
    /// network for every inference.
    RemoteOnly,
    /// MTL-Split (`SC`): the shared backbone runs on the edge, the flattened
    /// representation `Z_b` crosses the network, the task heads run remotely.
    Split,
}

impl DeploymentParadigm {
    /// All paradigms in presentation order.
    pub const ALL: [DeploymentParadigm; 3] = [
        DeploymentParadigm::LocalOnly,
        DeploymentParadigm::RemoteOnly,
        DeploymentParadigm::Split,
    ];

    /// Short label used in regenerated tables.
    pub fn label(&self) -> &'static str {
        match self {
            DeploymentParadigm::LocalOnly => "LoC",
            DeploymentParadigm::RemoteOnly => "RoC",
            DeploymentParadigm::Split => "SC (MTL-Split)",
        }
    }
}

/// Memory placed on each side of the network by a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bytes of model + activation state held on the edge device.
    pub edge_bytes: usize,
    /// Bytes of model + activation state held on the server.
    pub server_bytes: usize,
}

/// Everything needed to analyse one model/dataset combination under all
/// three paradigms. The byte figures come from
/// `mtlsplit_models::analysis::ModelReport` plus the dataset's raw input
/// size; keeping them as plain numbers keeps this crate independent of the
/// model zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Human-readable model name.
    pub model_name: String,
    /// Number of tasks to solve (`N`).
    pub task_count: usize,
    /// Estimated bytes of one full backbone (parameters + activations).
    pub backbone_bytes: usize,
    /// Estimated bytes of one task head.
    pub head_bytes: usize,
    /// Bytes of one raw input image.
    pub raw_input_bytes: usize,
    /// Bytes of one transmitted `Z_b` payload.
    pub zb_bytes: usize,
    /// Number of inferences in the latency experiment (the paper uses 100).
    pub inference_count: usize,
}

/// Result of analysing one paradigm for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentAnalysis {
    /// The paradigm analysed.
    pub paradigm: DeploymentParadigm,
    /// Memory placed on each side.
    pub memory: MemoryFootprint,
    /// Bytes that cross the network per inference.
    pub network_bytes_per_inference: usize,
    /// Aggregate transfer report for `inference_count` inferences.
    pub transfer: TransferReport,
    /// Whether the edge-side footprint fits the given device.
    pub fits_on_edge: bool,
    /// Fraction of the edge device's memory used.
    pub edge_utilisation: f64,
}

impl WorkloadProfile {
    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns an error if the task count or inference count is zero.
    pub fn validate(&self) -> Result<()> {
        if self.task_count == 0 {
            return Err(SplitError::InvalidConfig {
                reason: "task count must be positive".to_string(),
            });
        }
        if self.inference_count == 0 {
            return Err(SplitError::InvalidConfig {
                reason: "inference count must be positive".to_string(),
            });
        }
        Ok(())
    }

    /// Edge/server memory footprint of a paradigm.
    pub fn memory_footprint(&self, paradigm: DeploymentParadigm) -> MemoryFootprint {
        match paradigm {
            // LoC: single-task networks, one complete backbone + head per task,
            // all resident on the edge device.
            DeploymentParadigm::LocalOnly => MemoryFootprint {
                edge_bytes: self.task_count * (self.backbone_bytes + self.head_bytes),
                server_bytes: 0,
            },
            // RoC: the edge device only senses; the server holds one shared
            // backbone plus every head (it can use MTL remotely too).
            DeploymentParadigm::RemoteOnly => MemoryFootprint {
                edge_bytes: 0,
                server_bytes: self.backbone_bytes + self.task_count * self.head_bytes,
            },
            // SC: the shared backbone sits on the edge, the heads on the server.
            DeploymentParadigm::Split => MemoryFootprint {
                edge_bytes: self.backbone_bytes,
                server_bytes: self.task_count * self.head_bytes,
            },
        }
    }

    /// Bytes that must cross the network for one inference under a paradigm.
    pub fn network_bytes_per_inference(&self, paradigm: DeploymentParadigm) -> usize {
        match paradigm {
            DeploymentParadigm::LocalOnly => 0,
            DeploymentParadigm::RemoteOnly => self.raw_input_bytes,
            DeploymentParadigm::Split => self.zb_bytes,
        }
    }

    /// Analyses one paradigm against a channel and an edge device.
    ///
    /// # Errors
    ///
    /// Returns an error if the profile is invalid.
    pub fn analyze(
        &self,
        paradigm: DeploymentParadigm,
        channel: &ChannelModel,
        device: &EdgeDevice,
    ) -> Result<DeploymentAnalysis> {
        self.validate()?;
        let memory = self.memory_footprint(paradigm);
        let per_inference = self.network_bytes_per_inference(paradigm);
        let transfer = channel.transfer_batch(per_inference, self.inference_count);
        Ok(DeploymentAnalysis {
            paradigm,
            memory,
            network_bytes_per_inference: per_inference,
            transfer,
            fits_on_edge: device.fits(memory.edge_bytes),
            edge_utilisation: device.utilisation(memory.edge_bytes),
        })
    }

    /// Analyses all three paradigms.
    ///
    /// # Errors
    ///
    /// Returns an error if the profile is invalid.
    pub fn analyze_all(
        &self,
        channel: &ChannelModel,
        device: &EdgeDevice,
    ) -> Result<Vec<DeploymentAnalysis>> {
        DeploymentParadigm::ALL
            .iter()
            .map(|&p| self.analyze(p, channel, device))
            .collect()
    }

    /// Edge-memory saving of Split Computing relative to Local-only
    /// Computing (the paper reports ≈38 % for two tasks and ≈57 % for three
    /// tasks with EfficientNet).
    pub fn memory_saving_vs_loc(&self) -> f64 {
        let loc = self
            .memory_footprint(DeploymentParadigm::LocalOnly)
            .edge_bytes;
        let sc = self.memory_footprint(DeploymentParadigm::Split).edge_bytes;
        if loc == 0 {
            0.0
        } else {
            1.0 - sc as f64 / loc as f64
        }
    }

    /// Transfer-latency saving of Split Computing relative to Remote-only
    /// Computing over the given channel (the paper reports ≈87 %).
    pub fn latency_saving_vs_roc(&self, channel: &ChannelModel) -> f64 {
        let roc = channel
            .transfer_batch(self.raw_input_bytes, self.inference_count)
            .seconds_total;
        let sc = channel
            .transfer_batch(self.zb_bytes, self.inference_count)
            .seconds_total;
        if roc <= 0.0 {
            0.0
        } else {
            1.0 - sc / roc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A profile mirroring the paper's FACES + EfficientNet numbers:
    /// ~3.45 GB per full network, ~115 MB raw inputs, ~1.5 MB Z_b, 3 tasks.
    fn paper_like_profile(tasks: usize) -> WorkloadProfile {
        WorkloadProfile {
            model_name: "EfficientNet".to_string(),
            task_count: tasks,
            backbone_bytes: 3_450_000_000,
            head_bytes: 20_000_000,
            raw_input_bytes: 115_000_000,
            zb_bytes: 1_500_000,
            inference_count: 100,
        }
    }

    #[test]
    fn loc_memory_grows_linearly_with_tasks_and_sc_does_not() {
        let two = paper_like_profile(2);
        let three = paper_like_profile(3);
        let loc2 = two
            .memory_footprint(DeploymentParadigm::LocalOnly)
            .edge_bytes;
        let loc3 = three
            .memory_footprint(DeploymentParadigm::LocalOnly)
            .edge_bytes;
        let sc2 = two.memory_footprint(DeploymentParadigm::Split).edge_bytes;
        let sc3 = three.memory_footprint(DeploymentParadigm::Split).edge_bytes;
        assert!(loc3 > loc2);
        assert_eq!(
            sc2, sc3,
            "the shared backbone does not grow with the task count"
        );
    }

    #[test]
    fn memory_savings_match_the_papers_band() {
        // ~38-50 % for two tasks, ~57-67 % for three tasks.
        let two = paper_like_profile(2);
        let three = paper_like_profile(3);
        assert!(
            two.memory_saving_vs_loc() > 0.35,
            "{}",
            two.memory_saving_vs_loc()
        );
        assert!(
            three.memory_saving_vs_loc() > 0.55,
            "{}",
            three.memory_saving_vs_loc()
        );
        assert!(three.memory_saving_vs_loc() > two.memory_saving_vs_loc());
    }

    #[test]
    fn latency_saving_vs_roc_is_about_87_percent() {
        let profile = paper_like_profile(3);
        let saving = profile.latency_saving_vs_roc(&ChannelModel::gigabit());
        assert!(saving > 0.85 && saving < 0.995, "saving {saving}");
    }

    #[test]
    fn split_fits_the_jetson_when_loc_does_not() {
        let profile = paper_like_profile(2);
        let nano = EdgeDevice::jetson_nano();
        let channel = ChannelModel::gigabit();
        let loc = profile
            .analyze(DeploymentParadigm::LocalOnly, &channel, &nano)
            .unwrap();
        let sc = profile
            .analyze(DeploymentParadigm::Split, &channel, &nano)
            .unwrap();
        assert!(!loc.fits_on_edge, "6.9 GB LoC deployment must not fit 4 GB");
        assert!(sc.fits_on_edge);
        assert!(sc.edge_utilisation < 1.0);
    }

    #[test]
    fn network_payloads_follow_the_paradigm() {
        let profile = paper_like_profile(2);
        assert_eq!(
            profile.network_bytes_per_inference(DeploymentParadigm::LocalOnly),
            0
        );
        assert_eq!(
            profile.network_bytes_per_inference(DeploymentParadigm::RemoteOnly),
            115_000_000
        );
        assert_eq!(
            profile.network_bytes_per_inference(DeploymentParadigm::Split),
            1_500_000
        );
    }

    #[test]
    fn analyze_all_returns_every_paradigm() {
        let profile = paper_like_profile(2);
        let all = profile
            .analyze_all(&ChannelModel::gigabit(), &EdgeDevice::jetson_nano())
            .unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].paradigm, DeploymentParadigm::LocalOnly);
        assert_eq!(all[2].paradigm, DeploymentParadigm::Split);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut profile = paper_like_profile(2);
        profile.task_count = 0;
        assert!(profile
            .analyze(
                DeploymentParadigm::Split,
                &ChannelModel::gigabit(),
                &EdgeDevice::jetson_nano()
            )
            .is_err());
        let mut profile = paper_like_profile(2);
        profile.inference_count = 0;
        assert!(profile.validate().is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DeploymentParadigm::LocalOnly.label(), "LoC");
        assert_eq!(DeploymentParadigm::RemoteOnly.label(), "RoC");
        assert!(DeploymentParadigm::Split.label().contains("SC"));
    }
}
