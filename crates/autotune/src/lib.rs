//! `mtlsplit-autotune`: the split-point autotuner for MTL-Split
//! deployments.
//!
//! The paper fixes *where* to cut the shared backbone by hand; this crate
//! turns the split depth into a searched variable. The pipeline:
//!
//! 1. **Cost model** ([`CostModel`]) — one [`StageCost`] per backbone stage
//!    boundary: cumulative edge compute, wire elements, wire rank.
//!    [`CostModel::measure`] profiles real traced inference passes on this
//!    machine; [`CostModel::from_macs`] scales analytical MAC counts for a
//!    deterministic, hermetic model.
//! 2. **Sweep** ([`sweep`]) — prices every (stage, precision) candidate
//!    under a [`mtlsplit_split::ChannelModel`]: edge seconds, exact payload
//!    bytes, transfer seconds, server seconds.
//! 3. **Pareto front** ([`pareto_front`]) — keeps the candidates no other
//!    candidate beats on all of (edge compute, wire bytes, server compute)
//!    at once.
//! 4. **Deployment plan** ([`plan_deployment`]) — picks one front point per
//!    [`DeviceClassSpec`] by class-adjusted latency under the class's
//!    budget, yielding the [`DeploymentProfile`] a serving deployment turns
//!    into handshake split rules.
//!
//! [`Autotuner`] bundles steps 2–4 behind one cost model.
//!
//! # Example
//!
//! ```
//! use mtlsplit_autotune::{Autotuner, CostModel, DeviceClassSpec};
//! use mtlsplit_models::{Backbone, BackboneConfig, BackboneKind};
//! use mtlsplit_split::ChannelModel;
//! use mtlsplit_tensor::StdRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from(7);
//! let backbone = Backbone::new(
//!     BackboneConfig::new(BackboneKind::MobileStyle, 3, 16),
//!     &mut rng,
//! )?;
//! let tuner = Autotuner::new(CostModel::from_macs(&backbone, 0.5, 10_000.0));
//! let front = tuner.pareto_front(&ChannelModel::wifi());
//! assert!(front.len() >= 3, "several splits stay rational");
//! let plan = tuner.plan(
//!     &ChannelModel::wifi(),
//!     &[DeviceClassSpec::strong_edge(), DeviceClassSpec::weak_edge()],
//! );
//! println!("{}", plan.summary());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cost;
mod deploy;
mod pareto;

pub use cost::{CostModel, StageCost};
pub use deploy::{plan_deployment, DeploymentProfile, DeviceClassSpec, ProfileEntry};
pub use pareto::{pareto_front, sweep, SplitPoint};

use mtlsplit_split::{ChannelModel, Precision};

/// The autotuner facade: one cost model, swept and planned on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Autotuner {
    model: CostModel,
    precisions: Vec<Precision>,
}

impl Autotuner {
    /// Creates a tuner over `model`, sweeping both wire precisions.
    pub fn new(model: CostModel) -> Self {
        Self {
            model,
            precisions: vec![Precision::Float32, Precision::Quant8],
        }
    }

    /// Restricts the sweep to the given precisions — e.g. `Float32` only,
    /// when bit-exact served outputs are required end to end.
    pub fn with_precisions(mut self, precisions: Vec<Precision>) -> Self {
        self.precisions = precisions;
        self
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Prices every candidate split under `channel`.
    pub fn sweep(&self, channel: &ChannelModel) -> Vec<SplitPoint> {
        sweep(&self.model, channel, &self.precisions)
    }

    /// The non-dominated candidates under `channel`.
    pub fn pareto_front(&self, channel: &ChannelModel) -> Vec<SplitPoint> {
        pareto_front(&self.sweep(channel))
    }

    /// Assigns one front point to each device class under `channel`.
    pub fn plan(&self, channel: &ChannelModel, classes: &[DeviceClassSpec]) -> DeploymentProfile {
        plan_deployment(&self.model, channel, classes, &self.precisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlsplit_models::{Backbone, BackboneConfig, BackboneKind};
    use mtlsplit_tensor::StdRng;

    fn mobile_tuner() -> Autotuner {
        let mut rng = StdRng::seed_from(5);
        let backbone = Backbone::new(
            BackboneConfig::new(BackboneKind::MobileStyle, 3, 16),
            &mut rng,
        )
        .unwrap();
        Autotuner::new(CostModel::from_macs(&backbone, 0.5, 50_000.0))
            .with_precisions(vec![Precision::Float32])
    }

    #[test]
    fn the_mobile_front_keeps_at_least_three_splits_on_every_channel() {
        // The headline acceptance property: under both a fast and a
        // degraded channel, at least three distinct stages survive the
        // Pareto reduction — edge compute strictly grows with depth while
        // wire bytes strictly shrink, so no depth dominates another.
        let tuner = mobile_tuner();
        for channel in [ChannelModel::wifi(), ChannelModel::lte_uplink()] {
            let front = tuner.pareto_front(&channel);
            let mut stages: Vec<usize> = front.iter().map(|p| p.stage).collect();
            stages.dedup();
            assert!(
                stages.len() >= 3,
                "front collapsed to {} stages under {channel:?}",
                stages.len()
            );
            // Dominance consistency: no front point dominates another.
            for a in &front {
                for b in &front {
                    assert!(!a.dominates(b), "front contains a dominated point");
                }
            }
        }
    }

    #[test]
    fn the_plan_moves_slow_devices_to_shallower_splits() {
        let tuner = mobile_tuner();
        let channel = ChannelModel::wifi();
        let classes = [
            DeviceClassSpec::strong_edge(),
            DeviceClassSpec::new("glacial-edge", 500.0, 10_000.0),
        ];
        let plan = tuner.plan(&channel, &classes);
        let strong = plan.stage_for("strong-edge").unwrap();
        let glacial = plan.stage_for("glacial-edge").unwrap();
        assert!(strong >= glacial, "slower silicon must not split deeper");
    }
}
