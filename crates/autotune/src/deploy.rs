//! Deployment planning: picking one front point per device class.
//!
//! A Pareto front says which splits are *rational*; it cannot say which one
//! a given client should use — that depends on how slow the client's silicon
//! is and how much latency its application tolerates. A [`DeviceClassSpec`]
//! captures exactly those two numbers, and [`plan_deployment`] picks, for
//! each class, the front point minimising the class-adjusted end-to-end
//! latency (edge compute scaled by the class's slowdown), preferring points
//! that fit the class's budget. The resulting [`DeploymentProfile`] is the
//! table a serving deployment feeds to the handshake negotiator
//! (`mtlsplit-serve`'s split rules).

use mtlsplit_split::{ChannelModel, Precision};

use crate::cost::CostModel;
use crate::pareto::{pareto_front, sweep, SplitPoint};

/// A named class of edge devices the deployment must serve.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceClassSpec {
    /// Class name, announced verbatim in the serving handshake.
    pub name: String,
    /// Edge compute multiplier relative to the profiled reference device
    /// (`1.0` = same speed, `8.0` = eight times slower).
    pub edge_slowdown: f64,
    /// End-to-end latency the class's application tolerates, milliseconds.
    pub latency_budget_ms: f64,
}

impl DeviceClassSpec {
    /// Creates a device class.
    pub fn new(name: impl Into<String>, edge_slowdown: f64, latency_budget_ms: f64) -> Self {
        Self {
            name: name.into(),
            edge_slowdown,
            latency_budget_ms,
        }
    }

    /// A device as fast as the profiling reference with a tight budget —
    /// typically lands on a deep split (compute is cheap, wire is not).
    pub fn strong_edge() -> Self {
        Self::new("strong-edge", 1.0, 20.0)
    }

    /// A device an order of magnitude slower than the reference — typically
    /// lands on a shallow split, offloading backbone work to the server.
    pub fn weak_edge() -> Self {
        Self::new("weak-edge", 10.0, 100.0)
    }
}

/// One planned assignment: the split a device class should deploy with.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// The device class this entry serves.
    pub device_class: DeviceClassSpec,
    /// The chosen front point (reference-device numbers).
    pub choice: SplitPoint,
    /// End-to-end latency with edge compute scaled by the class's slowdown,
    /// seconds.
    pub expected_latency_s: f64,
    /// Whether the expectation fits the class's latency budget. A `false`
    /// here means *no* split fits — the chosen one is still the least bad.
    pub within_budget: bool,
}

/// The tuned split table: one entry per device class.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentProfile {
    /// Entries in the order the classes were supplied.
    pub entries: Vec<ProfileEntry>,
}

impl DeploymentProfile {
    /// The stage assigned to `device_class`, if the profile covers it.
    pub fn stage_for(&self, device_class: &str) -> Option<usize> {
        self.entries
            .iter()
            .find(|e| e.device_class.name == device_class)
            .map(|e| e.choice.stage)
    }

    /// A human-readable one-line-per-class summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let budget = if entry.within_budget {
                "fits budget"
            } else {
                "over budget"
            };
            out.push_str(&format!(
                "{}: split after {} ({:?}, {} B) — {:.2} ms expected, {}\n",
                entry.device_class.name,
                entry.choice.label,
                entry.choice.precision,
                entry.choice.wire_bytes,
                entry.expected_latency_s * 1e3,
                budget,
            ));
        }
        out
    }
}

/// The class-adjusted end-to-end latency of `point` for `class`: edge
/// compute scales with the device, transfer and server compute do not.
fn adjusted_latency_s(point: &SplitPoint, class: &DeviceClassSpec) -> f64 {
    point.edge_compute_s * class.edge_slowdown + point.transfer_s + point.server_compute_s
}

/// Sweeps `model` under `channel`, reduces to the Pareto front, and picks
/// one front point per device class: the budget-fitting point with the
/// lowest class-adjusted latency, or the overall lowest if nothing fits.
pub fn plan_deployment(
    model: &CostModel,
    channel: &ChannelModel,
    classes: &[DeviceClassSpec],
    precisions: &[Precision],
) -> DeploymentProfile {
    let front = pareto_front(&sweep(model, channel, precisions));
    let entries = classes
        .iter()
        .map(|class| {
            let best = front
                .iter()
                .map(|point| (point, adjusted_latency_s(point, class)))
                .min_by(|a, b| {
                    let budget_s = class.latency_budget_ms * 1e-3;
                    // Fitting the budget outranks raw speed; ties break on
                    // the adjusted latency itself.
                    let a_fits = a.1 <= budget_s;
                    let b_fits = b.1 <= budget_s;
                    b_fits
                        .cmp(&a_fits)
                        .then(a.1.partial_cmp(&b.1).expect("latency is finite"))
                });
            let (choice, expected_latency_s) = match best {
                Some((point, latency)) => (point.clone(), latency),
                None => panic!("plan_deployment needs a non-empty cost model"),
            };
            ProfileEntry {
                within_budget: expected_latency_s <= class.latency_budget_ms * 1e-3,
                device_class: class.clone(),
                choice,
                expected_latency_s,
            }
        })
        .collect();
    DeploymentProfile { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StageCost;

    /// A model where shallow splits ship megabytes and deep splits cost
    /// milliseconds of edge compute — enough contrast that slow and fast
    /// devices must choose differently.
    fn contrast_model() -> CostModel {
        let stage = |stage, label: &str, edge, elements| StageCost {
            stage,
            label: label.to_string(),
            edge_compute_ns: edge,
            wire_elements: elements,
            wire_rank: 2,
        };
        CostModel::synthetic(
            vec![
                stage(0, "stem", 200_000.0, 262_144),
                stage(1, "mid", 2_000_000.0, 16_384),
                stage(2, "gap", 8_000_000.0, 256),
            ],
            100_000.0,
        )
    }

    #[test]
    fn slow_and_fast_devices_get_different_splits() {
        let model = contrast_model();
        let channel = ChannelModel::lte_uplink();
        let classes = vec![
            DeviceClassSpec::strong_edge(),
            DeviceClassSpec::new("glacial-edge", 400.0, 5_000.0),
        ];
        let profile = plan_deployment(&model, &channel, &classes, &[Precision::Float32]);
        assert_eq!(profile.entries.len(), 2);
        let strong = profile.stage_for("strong-edge").unwrap();
        let glacial = profile.stage_for("glacial-edge").unwrap();
        assert!(
            strong > glacial,
            "a 400x slower device must split shallower ({strong} vs {glacial})"
        );
        assert!(profile.stage_for("unknown").is_none());
        assert!(profile.summary().contains("strong-edge"));
    }

    #[test]
    fn budget_fitting_points_outrank_faster_over_budget_ones() {
        // One point at 1 ms, one at 3 ms. A 2.5 ms budget must take the
        // 1 ms point; a class whose slowdown pushes the 1 ms point to 40 ms
        // but leaves the other at 3.9 ms must take the slower-but-fitting
        // one even though 3.9 ms is not the adjusted minimum for speed.
        let stage = |stage, label: &str, edge, elements| StageCost {
            stage,
            label: label.to_string(),
            edge_compute_ns: edge,
            wire_elements: elements,
            wire_rank: 2,
        };
        // stage "light": tiny edge compute, big wire. stage "heavy": all
        // edge compute, tiny wire.
        let model = CostModel::synthetic(
            vec![
                stage(0, "light", 100_000.0, 40_000),
                stage(1, "heavy", 3_000_000.0, 100),
            ],
            0.0,
        );
        // A near-ideal channel so transfer time is negligible and the
        // arithmetic below stays readable.
        let channel = ChannelModel::new(1e12, 0.0, 0.0).unwrap();
        let fast = DeviceClassSpec::new("fast", 1.0, 3.5);
        let slowed = DeviceClassSpec::new("slowed", 30.0, 5.0);
        let profile = plan_deployment(&model, &channel, &[fast, slowed], &[Precision::Float32]);
        // fast: light ≈ 0.1 + 2.9 = 3.0 ms, heavy ≈ 3.0 ms — both fit the
        // 3.5 ms budget, so whichever is chosen must be flagged as fitting.
        assert!(profile.entries[0].within_budget);
        // slowed: light = 0.1*30 + 2.9 ≈ 5.9 ms, heavy = 3.0*30 = 90 ms —
        // nothing fits the 5 ms budget, so the least-bad point (light) is
        // chosen and flagged as over budget.
        let slowed_entry = &profile.entries[1];
        assert_eq!(slowed_entry.choice.label, "light");
        assert!(!slowed_entry.within_budget);
    }
}
