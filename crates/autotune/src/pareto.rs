//! The split sweep and its Pareto front.
//!
//! [`sweep`] prices every (stage, precision) candidate under one
//! [`ChannelModel`]; [`pareto_front`] keeps the candidates no other
//! candidate beats on *all three* axes at once — edge compute, wire bytes,
//! server compute. Splitting deeper always trades edge compute for wire and
//! server relief, so the front typically spans the whole depth range rather
//! than collapsing to one "best" point; which front point to deploy depends
//! on the device class (see [`crate::plan_deployment`]).

use mtlsplit_split::{ChannelModel, Precision, TensorCodec};

use crate::cost::CostModel;

/// One priced split candidate: a stage boundary and an uplink precision
/// under a specific channel.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPoint {
    /// Stage index the edge cuts at.
    pub stage: usize,
    /// Stage label.
    pub label: String,
    /// Uplink precision for the boundary tensor.
    pub precision: Precision,
    /// Edge compute on the reference device, seconds.
    pub edge_compute_s: f64,
    /// Exact encoded payload size of one boundary sample, bytes.
    pub wire_bytes: usize,
    /// Uplink transfer time for one sample under the swept channel, seconds.
    pub transfer_s: f64,
    /// Server compute (backbone tail + heads), seconds.
    pub server_compute_s: f64,
}

impl SplitPoint {
    /// End-to-end single-sample latency: edge compute, uplink transfer,
    /// server compute.
    pub fn total_latency_s(&self) -> f64 {
        self.edge_compute_s + self.transfer_s + self.server_compute_s
    }

    /// Whether this point beats `other` on every objective — no worse on
    /// all of (edge compute, wire bytes, server compute), strictly better
    /// on at least one.
    pub fn dominates(&self, other: &SplitPoint) -> bool {
        let no_worse = self.edge_compute_s <= other.edge_compute_s
            && self.wire_bytes <= other.wire_bytes
            && self.server_compute_s <= other.server_compute_s;
        let strictly_better = self.edge_compute_s < other.edge_compute_s
            || self.wire_bytes < other.wire_bytes
            || self.server_compute_s < other.server_compute_s;
        no_worse && strictly_better
    }
}

/// Prices every (stage, precision) candidate of `model` under `channel`,
/// ordered by stage then by the order of `precisions`.
pub fn sweep(
    model: &CostModel,
    channel: &ChannelModel,
    precisions: &[Precision],
) -> Vec<SplitPoint> {
    let mut points = Vec::with_capacity(model.stages().len() * precisions.len());
    for stage in model.stages() {
        for &precision in precisions {
            let codec = TensorCodec::new(precision);
            let wire_bytes = codec.wire_bytes_for(stage.wire_elements, stage.wire_rank);
            points.push(SplitPoint {
                stage: stage.stage,
                label: stage.label.clone(),
                precision,
                edge_compute_s: stage.edge_compute_ns * 1e-9,
                wire_bytes,
                transfer_s: channel.transfer_time_bytes(wire_bytes),
                server_compute_s: model.server_compute_ns(stage.stage) * 1e-9,
            });
        }
    }
    points
}

/// Keeps the non-dominated subset of `points`, preserving their order.
pub fn pareto_front(points: &[SplitPoint]) -> Vec<SplitPoint> {
    points
        .iter()
        .filter(|candidate| !points.iter().any(|other| other.dominates(candidate)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::StageCost;

    /// Three useful stages and one dominated one: "bad" costs exactly as
    /// much edge (and therefore server) compute as "mid" but ships twice
    /// the wire elements, so "mid" beats it on one axis and ties the rest.
    fn known_model() -> CostModel {
        let stage = |stage, label: &str, edge, elements| StageCost {
            stage,
            label: label.to_string(),
            edge_compute_ns: edge,
            wire_elements: elements,
            wire_rank: 2,
        };
        CostModel::synthetic(
            vec![
                stage(0, "early", 10_000.0, 4_096),
                stage(1, "mid", 20_000.0, 1_024),
                stage(2, "bad", 20_000.0, 2_048),
                stage(3, "late", 40_000.0, 256),
            ],
            5_000.0,
        )
    }

    #[test]
    fn the_front_drops_exactly_the_dominated_stage() {
        let model = known_model();
        let channel = ChannelModel::wifi();
        let points = sweep(&model, &channel, &[Precision::Float32]);
        assert_eq!(points.len(), 4);
        let front = pareto_front(&points);
        let labels: Vec<&str> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["early", "mid", "late"]);
        // "bad" ties "mid" on edge and server but loses on wire bytes.
        let bad = &points[2];
        let mid = &points[1];
        assert!(mid.dominates(bad));
        assert!(!bad.dominates(mid));
    }

    #[test]
    fn quant8_always_dominates_float32_at_the_same_stage() {
        // Same stage → same compute on both sides; quant8 payloads are
        // strictly smaller, so every float32 point at a swept stage is
        // dominated unless precision changed compute (it does not, here).
        let model = known_model();
        let channel = ChannelModel::lte_uplink();
        let points = sweep(&model, &channel, &[Precision::Float32, Precision::Quant8]);
        let front = pareto_front(&points);
        assert!(front.iter().all(|p| p.precision == Precision::Quant8));
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn totals_add_up_and_react_to_the_channel() {
        let model = known_model();
        let fast = sweep(&model, &ChannelModel::gigabit(), &[Precision::Float32]);
        let slow = sweep(&model, &ChannelModel::lte_uplink(), &[Precision::Float32]);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.wire_bytes, s.wire_bytes);
            assert!(s.transfer_s > f.transfer_s, "LTE must be slower than GbE");
            let expected = f.edge_compute_s + f.transfer_s + f.server_compute_s;
            assert!((f.total_latency_s() - expected).abs() < 1e-15);
        }
    }
}
