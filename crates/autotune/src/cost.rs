//! Per-stage cost models: what each candidate split costs in edge compute,
//! wire traffic and server compute.
//!
//! A [`CostModel`] carries one [`StageCost`] per backbone stage boundary.
//! Two constructors ship: [`CostModel::measure`] runs real traced inference
//! passes and reads the per-layer latency profile, so the numbers reflect
//! this machine's fused planned runtime; [`CostModel::from_macs`] scales the
//! backbone's analytical MAC counts instead, which is deterministic and
//! hermetic — the right choice for CI and for unit tests with a known
//! Pareto front.

use mtlsplit_models::Backbone;
use mtlsplit_nn::{InferPlan, Layer, Result};
use mtlsplit_obs as obs;
use mtlsplit_tensor::{StdRng, Tensor};

/// The cost of splitting after one backbone stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCost {
    /// Stage index (indexes `Backbone::stages()`).
    pub stage: usize,
    /// Stage label, e.g. `"sep2"`.
    pub label: String,
    /// Cumulative backbone compute through this stage on the reference
    /// edge device, nanoseconds per pass.
    pub edge_compute_ns: f64,
    /// Per-sample elements crossing the wire when splitting here.
    pub wire_elements: usize,
    /// Wire tensor rank at this boundary (4 = NCHW, 2 = flat).
    pub wire_rank: usize,
}

/// A backbone's complete split-cost profile plus the server-side head cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    stages: Vec<StageCost>,
    backbone_total_ns: f64,
    head_compute_ns: f64,
}

impl CostModel {
    /// Builds a model from explicit per-stage costs — synthetic inputs for
    /// tests, or measurements taken elsewhere. The full-backbone time is
    /// the last stage's cumulative time.
    pub fn synthetic(stages: Vec<StageCost>, head_compute_ns: f64) -> Self {
        let backbone_total_ns = stages.last().map(|s| s.edge_compute_ns).unwrap_or(0.0);
        Self {
            stages,
            backbone_total_ns,
            head_compute_ns,
        }
    }

    /// Builds a deterministic analytical model from the backbone's MAC
    /// counts: every stage costs `ns_per_mac` per multiply-accumulate.
    ///
    /// MAC counts ignore memory traffic, so the absolute numbers are crude —
    /// but cumulative MACs grow strictly with depth, which is the property
    /// the Pareto search needs, and the model is bit-reproducible across
    /// machines.
    pub fn from_macs(backbone: &Backbone, ns_per_mac: f64, head_compute_ns: f64) -> Self {
        let stages = backbone
            .stages()
            .iter()
            .enumerate()
            .map(|(index, stage)| StageCost {
                stage: index,
                label: stage.label.clone(),
                edge_compute_ns: stage.cumulative_macs as f64 * ns_per_mac,
                wire_elements: stage.elements,
                wire_rank: stage.wire_rank(),
            })
            .collect();
        Self::synthetic(stages, head_compute_ns)
    }

    /// Measures the backbone and heads on this machine: `passes` traced
    /// inference passes through a planned runtime, with per-stage times
    /// aggregated from the layer-latency profile.
    ///
    /// The measurement briefly enables the global tracing ring and resets
    /// it, so concurrent traced work in the same process would mix into the
    /// profile — measure from a quiet thread.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass failures from the backbone or heads.
    pub fn measure(
        backbone: &Backbone,
        heads: &[Box<dyn Layer>],
        batch: usize,
        passes: usize,
        rng: &mut StdRng,
    ) -> Result<Self> {
        let passes = passes.max(1);
        let side = backbone.input_size();
        let input = Tensor::randn(
            &[batch.max(1), backbone.in_channels(), side, side],
            0.0,
            1.0,
            rng,
        );
        let mut plan = InferPlan::new();
        // Warm the plan's arena so the traced passes see the steady state.
        let warm = plan.run(backbone, &input)?;
        plan.recycle(warm);
        obs::reset();
        obs::set_enabled(true);
        for _ in 0..passes {
            let out = plan.run(backbone, &input)?;
            plan.recycle(out);
        }
        obs::set_enabled(false);
        let profile = obs::layer_profile();
        // Heads are timed wholesale: their layer indices would collide with
        // the backbone's in the profile, and the split search only ever
        // needs their total.
        let features = plan.run(backbone, &input)?;
        let head_start = obs::now_ns();
        for _ in 0..passes {
            for head in heads {
                let out = plan.run(head.as_ref(), &features)?;
                plan.recycle(out);
            }
        }
        let head_compute_ns = (obs::now_ns() - head_start) as f64 / passes as f64;
        plan.recycle(features);
        // Each profile entry is one fused window keyed by its start index;
        // stage boundaries fall on fusion-window boundaries, so a window
        // belongs to the edge prefix iff it starts before the stage's
        // layer_end.
        let stages = backbone
            .stages()
            .iter()
            .enumerate()
            .map(|(index, stage)| {
                let cumulative: u64 = profile
                    .iter()
                    .filter(|window| (window.index as usize) < stage.layer_end)
                    .map(|window| window.total_ns)
                    .sum();
                StageCost {
                    stage: index,
                    label: stage.label.clone(),
                    edge_compute_ns: cumulative as f64 / passes as f64,
                    wire_elements: stage.elements,
                    wire_rank: stage.wire_rank(),
                }
            })
            .collect();
        Ok(Self::synthetic(stages, head_compute_ns))
    }

    /// The per-stage costs, ordered by stage index.
    pub fn stages(&self) -> &[StageCost] {
        &self.stages
    }

    /// Full-backbone compute per pass, nanoseconds.
    pub fn backbone_total_ns(&self) -> f64 {
        self.backbone_total_ns
    }

    /// All task heads' compute per pass, nanoseconds.
    pub fn head_compute_ns(&self) -> f64 {
        self.head_compute_ns
    }

    /// Server-side compute when splitting after `stage`: the backbone tail
    /// that remains, plus the heads.
    pub fn server_compute_ns(&self, stage: usize) -> f64 {
        let edge = self
            .stages
            .get(stage)
            .map(|s| s.edge_compute_ns)
            .unwrap_or(0.0);
        (self.backbone_total_ns - edge).max(0.0) + self.head_compute_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlsplit_models::{BackboneConfig, BackboneKind};
    use mtlsplit_nn::{Linear, Sequential};

    #[test]
    fn the_mac_model_is_monotone_and_partitions_server_work() {
        let mut rng = StdRng::seed_from(3);
        let backbone = Backbone::new(
            BackboneConfig::new(BackboneKind::MobileStyle, 3, 16),
            &mut rng,
        )
        .unwrap();
        let model = CostModel::from_macs(&backbone, 0.5, 1_000.0);
        assert_eq!(model.stages().len(), backbone.stage_count());
        // Cumulative MACs never shrink, and every compute stage (all but
        // the MAC-free global pool) strictly adds work.
        let mut strict = 0;
        for pair in model.stages().windows(2) {
            assert!(pair[1].edge_compute_ns >= pair[0].edge_compute_ns);
            if pair[1].edge_compute_ns > pair[0].edge_compute_ns {
                strict += 1;
            }
        }
        assert!(strict >= 3, "only {strict} stages added compute");
        // Deepest split leaves only the heads on the server.
        let last = model.stages().len() - 1;
        assert!((model.server_compute_ns(last) - model.head_compute_ns()).abs() < 1e-9);
        // Edge + server tail always reconstruct the full backbone.
        for stage in model.stages() {
            let total = stage.edge_compute_ns + model.server_compute_ns(stage.stage)
                - model.head_compute_ns();
            assert!((total - model.backbone_total_ns()).abs() < 1e-6);
        }
    }

    #[test]
    fn measured_profiles_grow_with_depth_and_cover_the_whole_backbone() {
        let mut rng = StdRng::seed_from(4);
        let backbone = Backbone::new(
            BackboneConfig::new(BackboneKind::MobileStyle, 3, 16),
            &mut rng,
        )
        .unwrap();
        let heads: Vec<Box<dyn Layer>> = vec![Box::new(Sequential::new().push(Linear::new(
            backbone.feature_dim(),
            4,
            &mut rng,
        )))];
        let model = CostModel::measure(&backbone, &heads, 1, 2, &mut rng).unwrap();
        assert_eq!(model.stages().len(), backbone.stage_count());
        for pair in model.stages().windows(2) {
            assert!(
                pair[1].edge_compute_ns >= pair[0].edge_compute_ns,
                "cumulative time cannot shrink with depth"
            );
        }
        let last = model.stages().last().unwrap();
        assert!(last.edge_compute_ns > 0.0, "the traced passes must be seen");
        assert!(model.head_compute_ns() > 0.0);
        // The deepest stage must account for every traced layer window.
        assert!((model.backbone_total_ns() - last.edge_compute_ns).abs() < 1e-9);
    }
}
