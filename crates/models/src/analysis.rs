//! Static model analysis: the quantities reported in the paper's Table 4.
//!
//! Table 4 lists, per backbone: the number of parameters, the size of those
//! parameters in megabytes, the forward/backward activation footprint, the
//! estimated total model size, and the element count and size of the shared
//! representation `Z_b`. All of those are functions of the architecture and
//! the input resolution, so they can be computed without training.

use mtlsplit_split::{Precision, TensorCodec};

use crate::backbone::Backbone;

/// Size of one `f32` activation or weight, in bytes.
pub const BYTES_PER_VALUE: usize = std::mem::size_of::<f32>();

/// Static size report for one backbone at one input resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Human-readable model name.
    pub model: String,
    /// Input resolution the activations were computed for (square side).
    pub input_size: usize,
    /// Number of trainable parameters in the backbone.
    pub parameters: usize,
    /// Size of the parameters in bytes.
    pub parameter_bytes: usize,
    /// Forward + backward activation footprint in bytes (one sample).
    pub forward_backward_bytes: usize,
    /// Estimated total size: parameters + activations.
    pub estimated_total_bytes: usize,
    /// Number of elements in the transmitted representation `Z_b`.
    pub zb_elements: usize,
    /// Size of `Z_b` in bytes.
    pub zb_bytes: usize,
}

impl ModelReport {
    /// Parameter size in megabytes.
    pub fn parameter_mb(&self) -> f64 {
        to_mb(self.parameter_bytes)
    }

    /// Forward/backward footprint in megabytes.
    pub fn forward_backward_mb(&self) -> f64 {
        to_mb(self.forward_backward_bytes)
    }

    /// Estimated total size in megabytes.
    pub fn estimated_total_mb(&self) -> f64 {
        to_mb(self.estimated_total_bytes)
    }

    /// `Z_b` size in megabytes.
    pub fn zb_mb(&self) -> f64 {
        to_mb(self.zb_bytes)
    }
}

/// Converts bytes to megabytes (10^6 bytes, as the paper does).
pub fn to_mb(bytes: usize) -> f64 {
    bytes as f64 / 1_000_000.0
}

/// Analyses a backbone at the resolution it was built for.
///
/// The forward/backward footprint follows the convention of the summary
/// tools the paper used: every stage's output activation is stored once for
/// the forward pass and once for the backward pass.
pub fn analyze_backbone(backbone: &Backbone) -> ModelReport {
    analyze_backbone_at(backbone, backbone.input_size())
}

/// Analyses a backbone with its activations re-scaled to a different square
/// input resolution.
///
/// Parameter counts are resolution-independent (all layers are convolutional
/// or global-pooling), while activation footprints grow with the squared
/// resolution ratio — which is how the scaled-down models are extrapolated to
/// the paper's 224×224 inputs for Table 4.
pub fn analyze_backbone_at(backbone: &Backbone, input_size: usize) -> ModelReport {
    use mtlsplit_nn::Layer as _;

    let parameters = backbone.parameter_count();
    let parameter_bytes = parameters * BYTES_PER_VALUE;
    let base = backbone.input_size() as f64;
    let ratio = (input_size as f64 / base).powi(2);
    // Z_b comes after global average pooling, so its size does not scale with
    // the input resolution; every other stage does.
    let zb_elements = backbone.feature_dim();
    let spatial_elements: usize = backbone
        .stage_footprint()
        .iter()
        .take(backbone.stage_footprint().len().saturating_sub(1))
        .map(|(_, n)| n)
        .sum();
    let scaled_spatial = (spatial_elements as f64 * ratio).round() as usize;
    let activation_elements = scaled_spatial + zb_elements;
    let forward_backward_bytes = 2 * activation_elements * BYTES_PER_VALUE;
    ModelReport {
        model: backbone.kind().display_name().to_string(),
        input_size,
        parameters,
        parameter_bytes,
        forward_backward_bytes,
        estimated_total_bytes: parameter_bytes + forward_backward_bytes,
        zb_elements,
        zb_bytes: zb_elements * BYTES_PER_VALUE,
    }
}

/// The raw input size in bytes for an RGB image of the given resolution —
/// the per-inference network payload of the Remote-only-Computing baseline.
pub fn raw_input_bytes(channels: usize, height: usize, width: usize) -> usize {
    channels * height * width * BYTES_PER_VALUE
}

/// One candidate split boundary with everything the autotuner (and the
/// README table) needs to compare it against its siblings: where it sits,
/// how much edge compute precedes it, and what its activation costs on the
/// wire at each supported precision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitCandidate {
    /// Stage index, usable with `Backbone::split_at`.
    pub stage: usize,
    /// Stage label, e.g. `"sep2"`.
    pub label: String,
    /// Per-sample elements crossing the wire when splitting here.
    pub elements: usize,
    /// Analytical multiply-accumulate count of the edge prefix (per sample).
    pub cumulative_macs: u64,
    /// Exact single-sample wire payload size at `Float32` precision,
    /// including the payload header.
    pub wire_bytes_float32: usize,
    /// Exact single-sample wire payload size at `Quant8` precision.
    pub wire_bytes_quant8: usize,
}

/// Enumerates every candidate split boundary of a backbone.
///
/// Wire sizes are computed with the same [`TensorCodec`] accounting the real
/// transport uses (`wire_bytes_for` equals `encode().len()` exactly), for a
/// single-sample batch at the boundary tensor's natural rank — NCHW for
/// spatial stages, flat `[batch, features]` after the global pool.
pub fn split_candidates(backbone: &Backbone) -> Vec<SplitCandidate> {
    backbone
        .stages()
        .iter()
        .enumerate()
        .map(|(stage, s)| SplitCandidate {
            stage,
            label: s.label.clone(),
            elements: s.elements,
            cumulative_macs: s.cumulative_macs,
            wire_bytes_float32: TensorCodec::new(Precision::Float32)
                .wire_bytes_for(s.elements, s.wire_rank()),
            wire_bytes_quant8: TensorCodec::new(Precision::Quant8)
                .wire_bytes_for(s.elements, s.wire_rank()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{BackboneConfig, BackboneKind};
    use mtlsplit_nn::Layer as _;
    use mtlsplit_tensor::StdRng;

    fn build(kind: BackboneKind) -> Backbone {
        let mut rng = StdRng::seed_from(1);
        Backbone::new(BackboneConfig::new(kind, 3, 24), &mut rng).unwrap()
    }

    #[test]
    fn report_is_internally_consistent() {
        let backbone = build(BackboneKind::MobileStyle);
        let report = analyze_backbone(&backbone);
        assert_eq!(report.parameters, backbone.parameter_count());
        assert_eq!(report.parameter_bytes, report.parameters * 4);
        assert_eq!(
            report.estimated_total_bytes,
            report.parameter_bytes + report.forward_backward_bytes
        );
        assert_eq!(report.zb_elements, backbone.feature_dim());
        assert_eq!(report.zb_bytes, report.zb_elements * 4);
    }

    #[test]
    fn activations_dominate_parameters_at_high_resolution() {
        // At the paper's 224x224 resolution the forward/backward footprint is
        // orders of magnitude larger than the parameter size (724 MB vs
        // 3.58 MB for MobileNetV3 in Table 4).
        let backbone = build(BackboneKind::MobileStyle);
        let report = analyze_backbone_at(&backbone, 224);
        assert!(report.forward_backward_bytes > 20 * report.parameter_bytes);
    }

    #[test]
    fn zb_does_not_grow_with_resolution() {
        let backbone = build(BackboneKind::EfficientStyle);
        let small = analyze_backbone_at(&backbone, 24);
        let large = analyze_backbone_at(&backbone, 224);
        assert_eq!(small.zb_bytes, large.zb_bytes);
        assert!(large.forward_backward_bytes > small.forward_backward_bytes * 50);
    }

    #[test]
    fn zb_is_much_smaller_than_the_raw_input() {
        // The core split-computing claim: transmitting Z_b beats transmitting x.
        for kind in BackboneKind::ALL {
            let backbone = build(kind);
            let report = analyze_backbone_at(&backbone, 224);
            let input = raw_input_bytes(3, 224, 224);
            assert!(report.zb_bytes * 100 < input, "{kind}");
        }
    }

    #[test]
    fn parameter_ordering_matches_table4() {
        let mobile = analyze_backbone(&build(BackboneKind::MobileStyle));
        let efficient = analyze_backbone(&build(BackboneKind::EfficientStyle));
        assert!(efficient.parameters > mobile.parameters);
        assert!(efficient.zb_elements > mobile.zb_elements);
    }

    #[test]
    fn split_candidates_cover_every_stage_with_exact_wire_sizes() {
        let backbone = build(BackboneKind::MobileStyle);
        let candidates = split_candidates(&backbone);
        assert_eq!(candidates.len(), backbone.stage_count());
        for (candidate, stage) in candidates.iter().zip(backbone.stages()) {
            assert_eq!(candidate.label, stage.label);
            assert_eq!(candidate.elements, stage.elements);
            assert_eq!(candidate.cumulative_macs, stage.cumulative_macs);
            // Quant8 spends 1 byte per element instead of 4; headers match.
            assert_eq!(
                candidate.wire_bytes_float32 - candidate.wire_bytes_quant8,
                3 * stage.elements
            );
        }
        // Wire cost shrinks toward the feature vector: the last candidate is
        // the cheapest to transmit.
        let last = candidates.last().unwrap();
        assert!(candidates
            .iter()
            .all(|c| c.wire_bytes_float32 >= last.wire_bytes_float32));
    }

    #[test]
    fn megabyte_helpers_divide_by_a_million() {
        assert!((to_mb(2_000_000) - 2.0).abs() < 1e-9);
        let backbone = build(BackboneKind::VggStyle);
        let report = analyze_backbone(&backbone);
        assert!((report.parameter_mb() - to_mb(report.parameter_bytes)).abs() < 1e-12);
    }
}
