//! Backbone and task-head model zoo for the MTL-Split reproduction.
//!
//! The paper evaluates three backbone families — VGG16, MobileNetV3 and
//! EfficientNet — with small MLP task heads on top. This crate provides
//! structurally analogous, CPU-scale versions of those families:
//!
//! * [`BackboneKind::VggStyle`] — plain 3×3 convolution stacks with max
//!   pooling, the "large, well-established" family.
//! * [`BackboneKind::MobileStyle`] — depthwise-separable convolutions with
//!   hard-swish activations, the lightweight embedded family.
//! * [`BackboneKind::EfficientStyle`] — inverted-residual (MBConv-like)
//!   blocks with squeeze-and-excitation, the compound-scaled family.
//!
//! Every backbone ends in global average pooling followed by a flatten, so
//! its output is the compact shared representation `Z_b` that MTL-Split
//! transmits from the edge device to the task heads on the server.
//!
//! The [`analysis`] module computes the quantities of the paper's Table 4
//! (parameter counts, parameter bytes, forward/backward activation footprint
//! and the size of `Z_b`), both for the scaled models that actually train in
//! this repository and extrapolated to the paper's 224×224 input resolution.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
mod backbone;
mod blocks;
mod head;

pub use backbone::{Backbone, BackboneConfig, BackboneKind, SplitStage};
pub use blocks::{MbConvBlock, SqueezeExcite};
pub use head::TaskHead;
