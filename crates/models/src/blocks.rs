//! Composite building blocks: squeeze-and-excitation and inverted residual
//! (MBConv-style) blocks used by the EfficientNet-style backbone.

use mtlsplit_nn::{
    BatchNorm2d, DepthwiseConv2d, HardSigmoid, HardSwish, Layer, Linear, NnError, Parameter,
    PointwiseConv2d, Relu, Result, RunMode, Sequential,
};
use mtlsplit_tensor::{global_avg_pool2d, global_avg_pool2d_into, StdRng, Tensor, TensorArena};

/// Squeeze-and-excitation: re-weights each channel by a learned gate computed
/// from the globally pooled feature map.
///
/// `y[b, c, :, :] = x[b, c, :, :] * gate(pool(x))[b, c]` where `gate` is a
/// two-layer MLP with a ReLU bottleneck and a hard-sigmoid output.
pub struct SqueezeExcite {
    channels: usize,
    gate: Sequential,
    cache: Option<SeCache>,
}

struct SeCache {
    input: Tensor,
    scale: Tensor,
}

impl SqueezeExcite {
    /// Creates a squeeze-excite block over `channels` channels with the given
    /// reduction ratio (clamped so the bottleneck has at least one unit).
    pub fn new(channels: usize, reduction: usize, rng: &mut StdRng) -> Self {
        let hidden = (channels / reduction.max(1)).max(1);
        let gate = Sequential::new()
            .push(Linear::new(channels, hidden, rng))
            .push(Relu::new())
            .push(Linear::new(hidden, channels, rng))
            .push(HardSigmoid::new());
        Self {
            channels,
            gate,
            cache: None,
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.rank() != 4 || input.dims()[1] != self.channels {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "SqueezeExcite({}) received input {:?}",
                    self.channels,
                    input.dims()
                ),
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for SqueezeExcite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqueezeExcite")
            .field("channels", &self.channels)
            .finish()
    }
}

impl Layer for SqueezeExcite {
    fn forward(&mut self, input: &Tensor, mode: RunMode<'_>) -> Result<Tensor> {
        if !mode.is_train() {
            return self.infer(input);
        }
        self.check_input(input)?;
        let pooled = global_avg_pool2d(input)?; // [batch, channels]
        let scale = self.gate.forward(&pooled, mode)?; // [batch, channels]
        let output = scale_channels(input, &scale);
        self.cache = Some(SeCache {
            input: input.clone(),
            scale,
        });
        Ok(output)
    }

    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: RunMode<'_>,
        ctx: &mut TensorArena,
    ) -> Result<Tensor> {
        if !mode.is_train() {
            return self.infer_into(input, ctx);
        }
        self.check_input(input)?;
        // Recycle the previous step's cache buffers before taking this
        // step's — the cross-step reuse that keeps the plan allocation-free.
        if let Some(old) = self.cache.take() {
            ctx.recycle(old.input);
            ctx.recycle(old.scale);
        }
        let dims = input.dims();
        let (batch, channels) = (dims[0], dims[1]);
        let mut pooled_buf = ctx.take(batch * channels);
        global_avg_pool2d_into(input, &mut pooled_buf)?;
        let pooled = Tensor::from_vec(pooled_buf, &[batch, channels])?;
        let scale = self.gate.forward_into(&pooled, mode, ctx)?;
        let mut out = ctx.take(input.len());
        write_scaled_channels(input, &scale, &mut out);
        let output = Tensor::from_vec(out, dims)?;
        ctx.recycle(pooled);
        let mut cached_input = ctx.take(input.len());
        cached_input.copy_from_slice(input.as_slice());
        self.cache = Some(SeCache {
            input: Tensor::from_vec(cached_input, dims)?,
            scale,
        });
        Ok(output)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let pooled = global_avg_pool2d(input)?;
        let scale = self.gate.infer(&pooled)?;
        Ok(scale_channels(input, &scale))
    }

    fn infer_into(&self, input: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        self.check_input(input)?;
        let dims = input.dims();
        let (batch, channels) = (dims[0], dims[1]);
        // Pool, gate (the Linear→ReLU half fuses) and re-scale, all on
        // arena buffers.
        let mut pooled_buf = ctx.take(batch * channels);
        global_avg_pool2d_into(input, &mut pooled_buf)?;
        let pooled = Tensor::from_vec(pooled_buf, &[batch, channels])?;
        let scale = self.gate.infer_into(&pooled, ctx)?;
        let mut out = ctx.take(input.len());
        write_scaled_channels(input, &scale, &mut out);
        let result = Tensor::from_vec(out, dims)?;
        ctx.recycle(pooled);
        ctx.recycle(scale);
        Ok(result)
    }

    fn backward_into(&mut self, grad_output: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardCache {
            layer: "SqueezeExcite",
        })?;
        let input_shape = cache.input.shape().clone();
        let dims = input_shape.dims();
        let (batch, channels, height, width) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = height * width;
        // Direct path: dL/dx = dL/dy * scale (broadcast over space), into an
        // arena buffer.
        let mut grad_input = ctx.take(grad_output.len());
        write_scaled_channels(grad_output, &cache.scale, &mut grad_input);
        // Gate path: dL/dscale[b, c] = sum_{h,w} dL/dy * x.
        let mut grad_scale = ctx.take(batch * channels);
        let go = grad_output.as_slice();
        let x = cache.input.as_slice();
        for b in 0..batch {
            for c in 0..channels {
                let base = (b * channels + c) * plane;
                grad_scale[b * channels + c] =
                    (0..plane).map(|i| go[base + i] * x[base + i]).sum::<f32>();
            }
        }
        let grad_scale = Tensor::from_vec(grad_scale, &[batch, channels])?;
        let grad_pooled = self.gate.backward_into(&grad_scale, ctx)?;
        ctx.recycle(grad_scale);
        // The pooled value is the spatial mean, so its gradient spreads
        // uniformly over the plane.
        let gp = grad_pooled.as_slice();
        let norm = 1.0 / plane.max(1) as f32;
        for b in 0..batch {
            for c in 0..channels {
                let g = gp[b * channels + c] * norm;
                let base = (b * channels + c) * plane;
                for v in &mut grad_input[base..base + plane] {
                    *v += g;
                }
            }
        }
        ctx.recycle(grad_pooled);
        Ok(Tensor::from_vec(grad_input, dims)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForwardCache {
            layer: "SqueezeExcite",
        })?;
        let dims = cache.input.dims();
        let (batch, channels, height, width) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = height * width;
        // Direct path: dL/dx += dL/dy * scale (broadcast over space).
        let mut grad_input = scale_channels(grad_output, &cache.scale);
        // Gate path: dL/dscale[b, c] = sum_{h,w} dL/dy * x.
        let mut grad_scale = vec![0.0f32; batch * channels];
        let go = grad_output.as_slice();
        let x = cache.input.as_slice();
        for b in 0..batch {
            for c in 0..channels {
                let base = (b * channels + c) * plane;
                grad_scale[b * channels + c] =
                    (0..plane).map(|i| go[base + i] * x[base + i]).sum::<f32>();
            }
        }
        let grad_pooled = self
            .gate
            .backward(&Tensor::from_vec(grad_scale, &[batch, channels])?)?;
        // The pooled value is the spatial mean, so its gradient spreads
        // uniformly over the plane.
        let gp = grad_pooled.as_slice();
        let gi = grad_input.as_mut_slice();
        let norm = 1.0 / plane.max(1) as f32;
        for b in 0..batch {
            for c in 0..channels {
                let g = gp[b * channels + c] * norm;
                let base = (b * channels + c) * plane;
                for v in &mut gi[base..base + plane] {
                    *v += g;
                }
            }
        }
        Ok(grad_input)
    }

    fn for_each_parameter(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.gate.for_each_parameter(f);
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.gate.parameters_mut()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        self.gate.parameters()
    }

    fn name(&self) -> &'static str {
        "SqueezeExcite"
    }
}

/// Multiplies every spatial position of channel `c` in batch item `b` by
/// `scale[b, c]`, allocating the output.
fn scale_channels(input: &Tensor, scale: &Tensor) -> Tensor {
    let mut out = input.clone();
    write_scaled_channels(input, scale, out.as_mut_slice());
    out
}

/// Writes `input * scale[b, c]` (broadcast over space) into `out` in one
/// pass — fully overwritten, so a recycled arena buffer is safe.
fn write_scaled_channels(input: &Tensor, scale: &Tensor, out: &mut [f32]) {
    let dims = input.dims();
    let (batch, channels) = (dims[0], dims[1]);
    let plane: usize = dims[2..].iter().product();
    let src = input.as_slice();
    let s = scale.as_slice();
    for b in 0..batch {
        for c in 0..channels {
            let factor = s[b * channels + c];
            let base = (b * channels + c) * plane;
            for (slot, &value) in out[base..base + plane]
                .iter_mut()
                .zip(&src[base..base + plane])
            {
                *slot = value * factor;
            }
        }
    }
}

/// An inverted-residual block in the spirit of MobileNetV2/EfficientNet's
/// MBConv: pointwise expansion → depthwise convolution → squeeze-excite →
/// pointwise projection, with a skip connection when the input and output
/// shapes match.
pub struct MbConvBlock {
    body: Sequential,
    use_skip: bool,
    // Presence marks a completed train-mode forward; stored inline so the
    // per-step cache write never heap-allocates.
    cached_input_dims: Option<mtlsplit_tensor::Shape>,
}

impl MbConvBlock {
    /// Creates an MBConv block.
    ///
    /// * `in_channels` / `out_channels` — channel counts before and after.
    /// * `expansion` — width multiplier of the hidden depthwise stage.
    /// * `stride` — spatial stride of the depthwise convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        expansion: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Self {
        let hidden = (in_channels * expansion).max(1);
        let body = Sequential::new()
            .push(PointwiseConv2d::new(in_channels, hidden, rng))
            .push(BatchNorm2d::new(hidden))
            .push(HardSwish::new())
            .push(DepthwiseConv2d::new(hidden, 3, stride, 1, rng))
            .push(BatchNorm2d::new(hidden))
            .push(HardSwish::new())
            .push(SqueezeExcite::new(hidden, 4, rng))
            .push(PointwiseConv2d::new(hidden, out_channels, rng))
            .push(BatchNorm2d::new(out_channels));
        Self {
            body,
            use_skip: stride == 1 && in_channels == out_channels,
            cached_input_dims: None,
        }
    }

    /// Whether the block adds a skip connection around its body.
    pub fn has_skip(&self) -> bool {
        self.use_skip
    }
}

impl std::fmt::Debug for MbConvBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MbConvBlock")
            .field("use_skip", &self.use_skip)
            .field("parameters", &self.parameter_count())
            .finish()
    }
}

impl Layer for MbConvBlock {
    fn forward(&mut self, input: &Tensor, mode: RunMode<'_>) -> Result<Tensor> {
        if !mode.is_train() {
            return self.infer(input);
        }
        self.cached_input_dims = Some(input.shape().clone());
        let out = self.body.forward(input, mode)?;
        if self.use_skip {
            Ok(out.add(input)?)
        } else {
            Ok(out)
        }
    }

    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: RunMode<'_>,
        ctx: &mut TensorArena,
    ) -> Result<Tensor> {
        if !mode.is_train() {
            return self.infer_into(input, ctx);
        }
        self.cached_input_dims = Some(input.shape().clone());
        let mut out = self.body.forward_into(input, mode, ctx)?;
        if self.use_skip {
            // In-place skip add, same element chain as `Tensor::add`.
            if out.dims() != input.dims() {
                return Ok(out.add(input)?); // canonical shape error
            }
            for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
                *o += x;
            }
        }
        Ok(out)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let out = self.body.infer(input)?;
        if self.use_skip {
            Ok(out.add(input)?)
        } else {
            Ok(out)
        }
    }

    fn infer_into(&self, input: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        let mut out = self.body.infer_into(input, ctx)?;
        if self.use_skip {
            // In-place skip add: `out[i] + input[i]` element-wise, the same
            // chain as `Tensor::add`, without a third buffer.
            if out.dims() != input.dims() {
                return Ok(out.add(input)?); // canonical shape error
            }
            for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
                *o += x;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.cached_input_dims.is_none() {
            return Err(NnError::MissingForwardCache {
                layer: "MbConvBlock",
            });
        }
        let grad_body = self.body.backward(grad_output)?;
        if self.use_skip {
            // The skip connection adds the output gradient directly to the
            // input gradient.
            Ok(grad_body.add(grad_output)?)
        } else {
            Ok(grad_body)
        }
    }

    fn backward_into(&mut self, grad_output: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        if self.cached_input_dims.is_none() {
            return Err(NnError::MissingForwardCache {
                layer: "MbConvBlock",
            });
        }
        let mut grad_body = self.body.backward_into(grad_output, ctx)?;
        if self.use_skip {
            // In-place skip add, same element chain as `Tensor::add`.
            if grad_body.dims() != grad_output.dims() {
                return Ok(grad_body.add(grad_output)?); // canonical shape error
            }
            for (g, &go) in grad_body
                .as_mut_slice()
                .iter_mut()
                .zip(grad_output.as_slice())
            {
                *g += go;
            }
        }
        Ok(grad_body)
    }

    fn for_each_parameter(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.body.for_each_parameter(f);
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.body.parameters_mut()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        self.body.parameters()
    }

    fn name(&self) -> &'static str {
        "MbConvBlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squeeze_excite_preserves_shape_and_bounds_gain() {
        let mut rng = StdRng::seed_from(1);
        let mut se = SqueezeExcite::new(8, 4, &mut rng);
        let x = Tensor::randn(&[2, 8, 5, 5], 0.0, 1.0, &mut rng);
        let y = se.forward(&x, RunMode::train(&mut rng)).unwrap();
        // The pure inference path computes the same re-weighting.
        assert_eq!(se.infer(&x).unwrap(), y);
        assert_eq!(y.dims(), x.dims());
        // The gate is a hard sigmoid, so |y| <= |x| element-wise.
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!(b.abs() <= a.abs() + 1e-6);
        }
    }

    #[test]
    fn squeeze_excite_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from(2);
        let mut se = SqueezeExcite::new(4, 2, &mut rng);
        let x = Tensor::randn(&[1, 4, 4, 4], 0.0, 1.0, &mut rng);
        let probe = Tensor::randn(x.dims(), 0.0, 1.0, &mut rng);
        se.forward(&x, RunMode::train(&mut rng)).unwrap();
        let grad = se.backward(&probe).unwrap();
        let eps = 1e-2;
        for idx in [0usize, 21, 63] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let up = se.infer(&plus).unwrap().mul(&probe).unwrap().sum();
            let down = se.infer(&minus).unwrap().mul(&probe).unwrap().sum();
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "idx {idx}: numerical {num} vs analytical {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn squeeze_excite_rejects_wrong_channel_count() {
        let mut rng = StdRng::seed_from(3);
        let se = SqueezeExcite::new(8, 4, &mut rng);
        assert!(se.infer(&Tensor::zeros(&[1, 4, 3, 3])).is_err());
    }

    #[test]
    fn mbconv_with_matching_shapes_uses_skip() {
        let mut rng = StdRng::seed_from(4);
        let block = MbConvBlock::new(8, 8, 2, 1, &mut rng);
        assert!(block.has_skip());
        let strided = MbConvBlock::new(8, 16, 2, 2, &mut rng);
        assert!(!strided.has_skip());
    }

    #[test]
    fn mbconv_forward_shapes() {
        let mut rng = StdRng::seed_from(5);
        let mut same = MbConvBlock::new(8, 8, 2, 1, &mut rng);
        let y = same
            .forward(&Tensor::zeros(&[2, 8, 8, 8]), RunMode::train(&mut rng))
            .unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        let down = MbConvBlock::new(8, 16, 2, 2, &mut rng);
        let y = down.infer(&Tensor::zeros(&[2, 8, 8, 8])).unwrap();
        assert_eq!(y.dims(), &[2, 16, 4, 4]);
    }

    #[test]
    fn mbconv_backward_produces_input_shaped_gradient() {
        let mut rng = StdRng::seed_from(6);
        let mut block = MbConvBlock::new(4, 4, 2, 1, &mut rng);
        let x = Tensor::randn(&[1, 4, 6, 6], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, RunMode::train(&mut rng)).unwrap();
        let grad = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(grad.dims(), x.dims());
        assert!(block
            .parameters()
            .iter()
            .any(|p| p.grad().squared_norm() > 0.0));
    }

    #[test]
    fn mbconv_backward_requires_forward() {
        let mut rng = StdRng::seed_from(7);
        let mut block = MbConvBlock::new(4, 4, 2, 1, &mut rng);
        assert!(block.backward(&Tensor::zeros(&[1, 4, 6, 6])).is_err());
    }
}
