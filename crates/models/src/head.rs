//! Task-solving heads: the small MLPs deployed on the remote server.

use mtlsplit_nn::{Layer, Linear, NnError, Parameter, Relu, Result, RunMode, Sequential};
use mtlsplit_tensor::{StdRng, Tensor, TensorArena};

/// A task-solving head `H_j(Z_b; theta_j)`.
///
/// As in the paper, each head is "a custom MultiLayer Perceptron composed of
/// two linear layers activated by the ReLU function": `Linear → ReLU →
/// Linear`, mapping the shared representation `Z_b` to per-class logits for
/// one task.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use mtlsplit_models::TaskHead;
/// use mtlsplit_nn::Layer;
/// use mtlsplit_tensor::{StdRng, Tensor};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let mut rng = StdRng::seed_from(0);
/// let head = TaskHead::new("object_type", 64, 32, 4, &mut rng)?;
/// let z = Tensor::zeros(&[8, 64]);
/// let logits = head.infer(&z)?;
/// assert_eq!(logits.dims(), &[8, 4]);
/// # Ok(())
/// # }
/// ```
pub struct TaskHead {
    name: String,
    classes: usize,
    in_features: usize,
    net: Sequential,
}

impl std::fmt::Debug for TaskHead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHead")
            .field("name", &self.name)
            .field("classes", &self.classes)
            .field("in_features", &self.in_features)
            .field("parameters", &self.parameter_count())
            .finish()
    }
}

impl TaskHead {
    /// Creates a head for a task with `classes` classes, reading
    /// `in_features` shared features through a hidden layer of width
    /// `hidden`.
    ///
    /// # Errors
    ///
    /// Returns an error if any dimension is zero.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        hidden: usize,
        classes: usize,
        rng: &mut StdRng,
    ) -> Result<Self> {
        if in_features == 0 || hidden == 0 || classes == 0 {
            return Err(NnError::InvalidConfig {
                reason: "task head dimensions must be positive".to_string(),
            });
        }
        let net = Sequential::new()
            .push(Linear::new(in_features, hidden, rng))
            .push(Relu::new())
            .push(Linear::new(hidden, classes, rng));
        Ok(Self {
            name: name.into(),
            classes,
            in_features,
            net,
        })
    }

    /// The task name this head solves.
    pub fn task_name(&self) -> &str {
        &self.name
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of shared features the head consumes.
    pub fn in_features(&self) -> usize {
        self.in_features
    }
}

impl Layer for TaskHead {
    fn forward(&mut self, input: &Tensor, mode: RunMode<'_>) -> Result<Tensor> {
        self.net.forward(input, mode)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        self.net.infer(input)
    }

    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: RunMode<'_>,
        ctx: &mut TensorArena,
    ) -> Result<Tensor> {
        self.net.forward_into(input, mode, ctx)
    }

    fn infer_into(&self, input: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        // The Linear→ReLU pair inside fuses into one GEMM on this path.
        self.net.infer_into(input, ctx)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.net.backward(grad_output)
    }

    fn backward_into(&mut self, grad_output: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        // The ReLU's gradient mask fuses into the second Linear's backward
        // GEMM on this path.
        self.net.backward_into(grad_output, ctx)
    }

    fn for_each_parameter(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.net.for_each_parameter(f);
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.net.parameters_mut()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        self.net.parameters()
    }

    fn name(&self) -> &'static str {
        "TaskHead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{Backbone, BackboneConfig, BackboneKind};

    #[test]
    fn head_maps_features_to_logits() {
        let mut rng = StdRng::seed_from(1);
        let head = TaskHead::new("severity", 32, 16, 3, &mut rng).unwrap();
        let z = Tensor::zeros(&[4, 32]);
        let logits = head.infer(&z).unwrap();
        assert_eq!(logits.dims(), &[4, 3]);
        assert_eq!(head.classes(), 3);
        assert_eq!(head.task_name(), "severity");
    }

    #[test]
    fn head_parameter_count_is_two_linear_layers() {
        let mut rng = StdRng::seed_from(2);
        let head = TaskHead::new("t", 10, 6, 4, &mut rng).unwrap();
        assert_eq!(head.parameter_count(), 10 * 6 + 6 + 6 * 4 + 4);
    }

    #[test]
    fn head_rejects_zero_dimensions() {
        let mut rng = StdRng::seed_from(3);
        assert!(TaskHead::new("t", 0, 4, 2, &mut rng).is_err());
        assert!(TaskHead::new("t", 4, 0, 2, &mut rng).is_err());
        assert!(TaskHead::new("t", 4, 4, 0, &mut rng).is_err());
    }

    #[test]
    fn head_is_smaller_than_every_backbone() {
        // The paper notes the heads are individually smaller than the backbone.
        let mut rng = StdRng::seed_from(4);
        for kind in BackboneKind::ALL {
            let backbone = Backbone::new(BackboneConfig::new(kind, 3, 24), &mut rng).unwrap();
            let head = TaskHead::new("t", backbone.feature_dim(), 32, 10, &mut rng).unwrap();
            assert!(
                head.parameter_count() < backbone.parameter_count(),
                "{kind}"
            );
        }
    }

    #[test]
    fn head_backward_flows_gradient() {
        let mut rng = StdRng::seed_from(5);
        let mut head = TaskHead::new("t", 8, 4, 2, &mut rng).unwrap();
        let z = Tensor::randn(&[3, 8], 0.0, 1.0, &mut rng);
        let logits = head.forward(&z, RunMode::train(&mut rng)).unwrap();
        let grad = head.backward(&Tensor::ones(logits.dims())).unwrap();
        assert_eq!(grad.dims(), z.dims());
    }
}
