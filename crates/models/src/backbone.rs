//! The three backbone families and their construction.

use mtlsplit_nn::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, GlobalAvgPool2d, HardSwish, Layer, MaxPool2d,
    NnError, Parameter, PointwiseConv2d, Relu, Result, RunMode, Sequential,
};
use mtlsplit_tensor::{StdRng, Tensor, TensorArena};

use crate::blocks::MbConvBlock;

/// The backbone family, mirroring the paper's three model choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackboneKind {
    /// Plain 3×3 convolution stacks with max pooling (VGG16 analogue).
    VggStyle,
    /// Depthwise-separable convolutions with hard-swish (MobileNetV3 analogue).
    MobileStyle,
    /// Inverted-residual MBConv blocks with squeeze-excite (EfficientNet analogue).
    EfficientStyle,
}

impl BackboneKind {
    /// All three families, in the order the paper's tables list them.
    pub const ALL: [BackboneKind; 3] = [
        BackboneKind::VggStyle,
        BackboneKind::MobileStyle,
        BackboneKind::EfficientStyle,
    ];

    /// The display name used in regenerated tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            BackboneKind::VggStyle => "VGG16 (VggStyle)",
            BackboneKind::MobileStyle => "MobileNetV3 (MobileStyle)",
            BackboneKind::EfficientStyle => "EfficientNet (EfficientStyle)",
        }
    }
}

impl std::fmt::Display for BackboneKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Configuration for building a backbone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackboneConfig {
    /// Which family to build.
    pub kind: BackboneKind,
    /// Number of input channels (3 for RGB).
    pub in_channels: usize,
    /// Square input side length in pixels.
    pub input_size: usize,
    /// Multiplier applied to every channel width (1.0 = the default width).
    pub width_multiplier: f32,
}

impl BackboneConfig {
    /// Creates a configuration with the default width multiplier.
    pub fn new(kind: BackboneKind, in_channels: usize, input_size: usize) -> Self {
        Self {
            kind,
            in_channels,
            input_size,
            width_multiplier: 1.0,
        }
    }

    /// Sets the width multiplier, returning the updated configuration.
    pub fn with_width_multiplier(mut self, multiplier: f32) -> Self {
        self.width_multiplier = multiplier;
        self
    }

    fn width(&self, base: usize) -> usize {
        ((base as f32 * self.width_multiplier).round() as usize).max(1)
    }
}

/// One candidate split boundary inside a backbone.
///
/// A backbone is a sequence of named stages (conv blocks, pools, the final
/// global-average-pool); cutting the network *after* stage `i` puts layers
/// `[0, layer_end)` on the edge and the rest on the server. Each record
/// carries everything the deployment and the autotuner need to reason about
/// that cut without running a forward pass: the boundary tensor's shape, its
/// per-sample element count (= wire payload elements), and the cumulative
/// multiply-accumulate work of the edge prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitStage {
    /// Stage label, e.g. `"sep2"` or `"gap"`.
    pub label: String,
    /// Number of leading layers in the backbone's layer stack that belong to
    /// the edge prefix when splitting after this stage.
    pub layer_end: usize,
    /// Channels of the boundary activation (feature length once flattened).
    pub channels: usize,
    /// Square spatial side of the boundary activation; `1` once pooled flat.
    pub spatial: usize,
    /// Per-sample elements crossing the wire when splitting here.
    pub elements: usize,
    /// Whether the boundary tensor is already flat (`[batch, elements]`)
    /// rather than NCHW.
    pub flat: bool,
    /// Analytical multiply-accumulate count (per sample) of the edge prefix:
    /// every conv / linear MAC from the input through this stage.
    pub cumulative_macs: u64,
}

impl SplitStage {
    /// Rank of the wire tensor at this boundary: 2 for flat features,
    /// 4 for NCHW activations.
    pub fn wire_rank(&self) -> usize {
        if self.flat {
            2
        } else {
            4
        }
    }
}

/// A shared backbone `M_b(x; psi)`: the edge-resident half of MTL-Split.
///
/// The backbone maps an NCHW image batch to a flat feature matrix
/// `Z_b in [batch, feature_dim]`. It also records the activation footprint of
/// every stage so the Table 4 memory analysis can be computed without
/// re-running a forward pass, and a [`SplitStage`] record per stage boundary
/// so [`Backbone::split_at`] can cut the network at any depth.
pub struct Backbone {
    kind: BackboneKind,
    net: Sequential,
    feature_dim: usize,
    input_size: usize,
    in_channels: usize,
    stage_footprint: Vec<(String, usize)>,
    stages: Vec<SplitStage>,
}

impl std::fmt::Debug for Backbone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backbone")
            .field("kind", &self.kind)
            .field("feature_dim", &self.feature_dim)
            .field("parameters", &self.parameter_count())
            .finish()
    }
}

/// Running shape + MAC tracker used while assembling a backbone.
///
/// The builders interleave layer pushes with tracker calls: shape-mutating
/// helpers (`conv`, `depthwise`, …) advance the running channel count,
/// spatial size and cumulative analytical MAC count, and `stage` snapshots
/// the current boundary — including how many layers the stack holds at that
/// point — into a [`SplitStage`].
struct StageTracker {
    channels: usize,
    size: usize,
    macs: u64,
    stages: Vec<SplitStage>,
}

impl StageTracker {
    fn new(channels: usize, size: usize) -> Self {
        Self {
            channels,
            size,
            macs: 0,
            stages: Vec::new(),
        }
    }

    /// A dense `k×k` convolution with the given stride (padding keeps
    /// `ceil(size / stride)` spatial output).
    fn conv(&mut self, out_channels: usize, kernel: usize, stride: usize) {
        let out_size = self.size.div_ceil(stride);
        self.macs += (kernel * kernel * self.channels * out_channels * out_size * out_size) as u64;
        self.channels = out_channels;
        self.size = out_size;
    }

    /// A depthwise `k×k` convolution (one filter per channel).
    fn depthwise(&mut self, kernel: usize, stride: usize) {
        let out_size = self.size.div_ceil(stride);
        self.macs += (kernel * kernel * self.channels * out_size * out_size) as u64;
        self.size = out_size;
    }

    /// A 1×1 pointwise convolution.
    fn pointwise(&mut self, out_channels: usize) {
        self.macs += (self.channels * out_channels * self.size * self.size) as u64;
        self.channels = out_channels;
    }

    /// A squeeze-excite gate over the current channels (two-layer MLP on the
    /// pooled vector; its MACs are spatial-size independent).
    fn squeeze_excite(&mut self, reduction: usize) {
        let hidden = (self.channels / reduction.max(1)).max(1);
        self.macs += (2 * self.channels * hidden) as u64;
    }

    /// An MBConv block: pointwise expansion → depthwise 3×3 → squeeze-excite
    /// → pointwise projection. Mirrors `MbConvBlock::new`.
    fn mbconv(&mut self, out_channels: usize, expansion: usize, stride: usize) {
        let hidden = (self.channels * expansion).max(1);
        self.pointwise(hidden);
        self.depthwise(3, stride);
        self.squeeze_excite(4);
        self.pointwise(out_channels);
    }

    /// A max pool over `window` (no MACs).
    fn pool(&mut self, window: usize) {
        self.size = (self.size / window).max(1);
    }

    /// Records a spatial (NCHW) stage boundary after `layer_end` layers.
    fn stage(&mut self, label: &str, layer_end: usize) {
        self.stages.push(SplitStage {
            label: label.to_string(),
            layer_end,
            channels: self.channels,
            spatial: self.size,
            elements: self.channels * self.size * self.size,
            flat: false,
            cumulative_macs: self.macs,
        });
    }

    /// Records the final flat stage (after global average pool + flatten).
    fn flat_stage(&mut self, label: &str, layer_end: usize) {
        self.stages.push(SplitStage {
            label: label.to_string(),
            layer_end,
            channels: self.channels,
            spatial: 1,
            elements: self.channels,
            flat: true,
            cumulative_macs: self.macs,
        });
    }
}

impl Backbone {
    /// Builds a backbone of the configured family.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is too small for the family's stride
    /// pattern (each family needs at least a 12-pixel input so its deepest
    /// stage keeps a positive spatial extent).
    pub fn new(config: BackboneConfig, rng: &mut StdRng) -> Result<Self> {
        if config.input_size < 12 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "input size {} too small for {:?} (minimum 12)",
                    config.input_size, config.kind
                ),
            });
        }
        if config.in_channels == 0 {
            return Err(NnError::InvalidConfig {
                reason: "in_channels must be positive".to_string(),
            });
        }
        let (net, feature_dim, stages) = match config.kind {
            BackboneKind::VggStyle => build_vgg(&config, rng),
            BackboneKind::MobileStyle => build_mobile(&config, rng),
            BackboneKind::EfficientStyle => build_efficient(&config, rng),
        };
        debug_assert_eq!(
            stages.last().map(|s| s.layer_end),
            Some(net.len()),
            "the final stage must cover the whole stack"
        );
        let stage_footprint = stages
            .iter()
            .map(|s| (s.label.clone(), s.elements))
            .collect();
        Ok(Self {
            kind: config.kind,
            net,
            feature_dim,
            input_size: config.input_size,
            in_channels: config.in_channels,
            stage_footprint,
            stages,
        })
    }

    /// The backbone family.
    pub fn kind(&self) -> BackboneKind {
        self.kind
    }

    /// Length of the flattened shared representation `Z_b` per sample.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The square input size the backbone was built for.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Number of input channels the backbone was built for.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Per-stage activation element counts (per sample), in execution order.
    pub fn stage_footprint(&self) -> &[(String, usize)] {
        &self.stage_footprint
    }

    /// Every candidate split boundary, in execution order. Aligned one-to-one
    /// with [`Backbone::stage_footprint`]; the last stage is the flattened
    /// feature vector (the classic pre-head split).
    pub fn stages(&self) -> &[SplitStage] {
        &self.stages
    }

    /// Number of candidate split boundaries.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Index of the default (deepest) split: after the final stage, so the
    /// entire backbone runs on the edge and only the flat feature vector
    /// crosses the wire. This is the behavior all prior deployments used.
    pub fn default_split(&self) -> usize {
        self.stages.len() - 1
    }

    /// Cuts the backbone after stage `stage`, consuming it.
    ///
    /// Returns `(edge, tail)`: `edge` holds layers `[0, layer_end)` of the
    /// stage and `tail` the remainder (empty at the default split). Running
    /// `edge` then `tail` is bit-identical to the monolithic backbone — the
    /// planned runtime's fused epilogues are 0-ULP equal to their unfused
    /// chains, so no cut point changes any output bit.
    ///
    /// # Errors
    ///
    /// Returns an error if `stage` is out of range.
    pub fn split_at(self, stage: usize) -> Result<(Sequential, Sequential)> {
        let Some(boundary) = self.stages.get(stage) else {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "split stage {stage} out of range for {:?} ({} stages)",
                    self.kind,
                    self.stages.len()
                ),
            });
        };
        let mut edge = self.net;
        let tail = edge.split_off(boundary.layer_end);
        Ok((edge, tail))
    }

    /// The planned backward pass with the image gradient discarded: raw
    /// pixels need no gradient, so the first stage skips its input-gradient
    /// kernels entirely. Parameter gradients are bit-identical to
    /// [`Layer::backward_into`] followed by discarding its result.
    ///
    /// # Errors
    ///
    /// Returns an error if called before a train-mode forward or with a
    /// mismatched gradient shape.
    pub fn backward_into_discarding_input(
        &mut self,
        grad_output: &Tensor,
        ctx: &mut TensorArena,
    ) -> Result<()> {
        self.net.backward_into_discarding_input(grad_output, ctx)
    }

    /// Total activation elements per sample across all stages.
    pub fn activation_elements(&self) -> usize {
        self.stage_footprint.iter().map(|(_, n)| n).sum()
    }
}

impl Layer for Backbone {
    fn forward(&mut self, input: &Tensor, mode: RunMode<'_>) -> Result<Tensor> {
        self.net.forward(input, mode)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        self.net.infer(input)
    }

    fn forward_into(
        &mut self,
        input: &Tensor,
        mode: RunMode<'_>,
        ctx: &mut TensorArena,
    ) -> Result<Tensor> {
        self.net.forward_into(input, mode, ctx)
    }

    fn infer_into(&self, input: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        self.net.infer_into(input, ctx)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.net.backward(grad_output)
    }

    fn backward_into(&mut self, grad_output: &Tensor, ctx: &mut TensorArena) -> Result<Tensor> {
        self.net.backward_into(grad_output, ctx)
    }

    fn for_each_parameter(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.net.for_each_parameter(f);
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.net.parameters_mut()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        self.net.parameters()
    }

    fn name(&self) -> &'static str {
        "Backbone"
    }
}

fn build_vgg(config: &BackboneConfig, rng: &mut StdRng) -> (Sequential, usize, Vec<SplitStage>) {
    let c1 = config.width(16);
    let c2 = config.width(32);
    let c3 = config.width(64);
    let mut tracker = StageTracker::new(config.in_channels, config.input_size);
    let mut net = Sequential::new()
        .push(Conv2d::new(config.in_channels, c1, 3, 1, 1, rng))
        .push(Relu::new());
    tracker.conv(c1, 3, 1);
    tracker.stage("conv1_1", net.len());
    net = net
        .push(Conv2d::new(c1, c1, 3, 1, 1, rng))
        .push(Relu::new());
    tracker.conv(c1, 3, 1);
    tracker.stage("conv1_2", net.len());
    net = net.push(MaxPool2d::new(2, 2));
    tracker.pool(2);
    tracker.stage("pool1", net.len());

    net = net
        .push(Conv2d::new(c1, c2, 3, 1, 1, rng))
        .push(Relu::new());
    tracker.conv(c2, 3, 1);
    tracker.stage("conv2_1", net.len());
    net = net
        .push(Conv2d::new(c2, c2, 3, 1, 1, rng))
        .push(Relu::new());
    tracker.conv(c2, 3, 1);
    tracker.stage("conv2_2", net.len());
    net = net.push(MaxPool2d::new(2, 2));
    tracker.pool(2);
    tracker.stage("pool2", net.len());

    net = net
        .push(Conv2d::new(c2, c3, 3, 1, 1, rng))
        .push(Relu::new());
    tracker.conv(c3, 3, 1);
    tracker.stage("conv3_1", net.len());
    net = net
        .push(Conv2d::new(c3, c3, 3, 1, 1, rng))
        .push(Relu::new());
    tracker.conv(c3, 3, 1);
    tracker.stage("conv3_2", net.len());
    net = net.push(MaxPool2d::new(2, 2));
    tracker.pool(2);
    tracker.stage("pool3", net.len());

    net = net.push(GlobalAvgPool2d::new()).push(Flatten::new());
    tracker.flat_stage("gap", net.len());
    (net, c3, tracker.stages)
}

fn build_mobile(config: &BackboneConfig, rng: &mut StdRng) -> (Sequential, usize, Vec<SplitStage>) {
    let c_stem = config.width(8);
    let c1 = config.width(16);
    let c2 = config.width(24);
    let c3 = config.width(32);
    let mut tracker = StageTracker::new(config.in_channels, config.input_size);

    let mut net = Sequential::new()
        .push(Conv2d::new(config.in_channels, c_stem, 3, 2, 1, rng))
        .push(BatchNorm2d::new(c_stem))
        .push(HardSwish::new());
    tracker.conv(c_stem, 3, 2);
    tracker.stage("stem", net.len());

    let separable = |net: Sequential,
                     tracker: &mut StageTracker,
                     in_c: usize,
                     out_c: usize,
                     stride: usize,
                     label: &str,
                     rng: &mut StdRng| {
        let net = net
            .push(DepthwiseConv2d::new(in_c, 3, stride, 1, rng))
            .push(BatchNorm2d::new(in_c))
            .push(HardSwish::new())
            .push(PointwiseConv2d::new(in_c, out_c, rng))
            .push(BatchNorm2d::new(out_c))
            .push(HardSwish::new());
        tracker.depthwise(3, stride);
        tracker.pointwise(out_c);
        tracker.stage(label, net.len());
        net
    };

    net = separable(net, &mut tracker, c_stem, c1, 1, "sep1", rng);
    net = separable(net, &mut tracker, c1, c2, 2, "sep2", rng);
    net = separable(net, &mut tracker, c2, c3, 1, "sep3", rng);

    net = net.push(GlobalAvgPool2d::new()).push(Flatten::new());
    tracker.flat_stage("gap", net.len());
    (net, c3, tracker.stages)
}

fn build_efficient(
    config: &BackboneConfig,
    rng: &mut StdRng,
) -> (Sequential, usize, Vec<SplitStage>) {
    let c_stem = config.width(12);
    let c1 = config.width(16);
    let c2 = config.width(24);
    let c3 = config.width(40);
    let mut tracker = StageTracker::new(config.in_channels, config.input_size);

    let mut net = Sequential::new()
        .push(Conv2d::new(config.in_channels, c_stem, 3, 2, 1, rng))
        .push(BatchNorm2d::new(c_stem))
        .push(HardSwish::new());
    tracker.conv(c_stem, 3, 2);
    tracker.stage("stem", net.len());

    net = net.push(MbConvBlock::new(c_stem, c1, 2, 1, rng));
    tracker.mbconv(c1, 2, 1);
    tracker.stage("mbconv1", net.len());
    net = net.push(MbConvBlock::new(c1, c2, 3, 2, rng));
    tracker.mbconv(c2, 3, 2);
    tracker.stage("mbconv2", net.len());
    net = net.push(MbConvBlock::new(c2, c2, 3, 1, rng));
    tracker.mbconv(c2, 3, 1);
    tracker.stage("mbconv3", net.len());
    net = net.push(MbConvBlock::new(c2, c3, 3, 2, rng));
    tracker.mbconv(c3, 3, 2);
    tracker.stage("mbconv4", net.len());

    net = net.push(GlobalAvgPool2d::new()).push(Flatten::new());
    tracker.flat_stage("gap", net.len());
    (net, c3, tracker.stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(kind: BackboneKind, size: usize) -> Backbone {
        let mut rng = StdRng::seed_from(1);
        Backbone::new(BackboneConfig::new(kind, 3, size), &mut rng).unwrap()
    }

    #[test]
    fn every_family_produces_flat_features() {
        for kind in BackboneKind::ALL {
            let mut backbone = build(kind, 24);
            let mut rng = StdRng::seed_from(9);
            let x = Tensor::zeros(&[2, 3, 24, 24]);
            let z = backbone.forward(&x, RunMode::train(&mut rng)).unwrap();
            assert_eq!(z.dims(), &[2, backbone.feature_dim()], "{kind}");
            // The &self inference path produces the same shape.
            assert_eq!(backbone.infer(&x).unwrap().dims(), z.dims(), "{kind}");
        }
    }

    #[test]
    fn parameter_count_ordering_matches_the_paper() {
        // VGG is the heaviest, MobileNet the lightest, EfficientNet in between.
        let vgg = build(BackboneKind::VggStyle, 24).parameter_count();
        let mobile = build(BackboneKind::MobileStyle, 24).parameter_count();
        let efficient = build(BackboneKind::EfficientStyle, 24).parameter_count();
        assert!(vgg > efficient, "vgg {vgg} vs efficient {efficient}");
        assert!(
            efficient > mobile,
            "efficient {efficient} vs mobile {mobile}"
        );
    }

    #[test]
    fn backward_flows_through_every_family() {
        for kind in BackboneKind::ALL {
            let mut backbone = build(kind, 20);
            let mut rng = StdRng::seed_from(2);
            let x = Tensor::randn(&[2, 3, 20, 20], 0.0, 1.0, &mut rng);
            let z = backbone.forward(&x, RunMode::train(&mut rng)).unwrap();
            let grad = backbone.backward(&Tensor::ones(z.dims())).unwrap();
            assert_eq!(grad.dims(), x.dims());
            let nonzero = backbone
                .parameters()
                .iter()
                .filter(|p| p.grad().squared_norm() > 0.0)
                .count();
            assert!(nonzero > 0, "{kind} produced no parameter gradients");
        }
    }

    #[test]
    fn width_multiplier_scales_parameters() {
        let mut rng = StdRng::seed_from(3);
        let narrow = Backbone::new(
            BackboneConfig::new(BackboneKind::VggStyle, 3, 24).with_width_multiplier(0.5),
            &mut rng,
        )
        .unwrap();
        let wide = Backbone::new(
            BackboneConfig::new(BackboneKind::VggStyle, 3, 24).with_width_multiplier(2.0),
            &mut rng,
        )
        .unwrap();
        assert!(wide.parameter_count() > narrow.parameter_count() * 4);
    }

    #[test]
    fn feature_dim_is_much_smaller_than_input() {
        // The whole point of the split: Z_b is far smaller than the raw image.
        for kind in BackboneKind::ALL {
            let backbone = build(kind, 28);
            assert!(backbone.feature_dim() * 8 < 3 * 28 * 28, "{kind}");
        }
    }

    #[test]
    fn stage_footprint_is_recorded() {
        let backbone = build(BackboneKind::MobileStyle, 24);
        assert!(!backbone.stage_footprint().is_empty());
        assert!(backbone.activation_elements() > backbone.feature_dim());
        // The last recorded stage is the pooled feature vector.
        assert_eq!(
            backbone.stage_footprint().last().unwrap().1,
            backbone.feature_dim()
        );
    }

    #[test]
    fn stages_align_with_the_footprint_and_cover_the_stack() {
        for kind in BackboneKind::ALL {
            let backbone = build(kind, 24);
            let stages = backbone.stages();
            assert_eq!(stages.len(), backbone.stage_footprint().len(), "{kind}");
            for (stage, (label, elements)) in stages.iter().zip(backbone.stage_footprint()) {
                assert_eq!(&stage.label, label, "{kind}");
                assert_eq!(stage.elements, *elements, "{kind}");
            }
            let last = stages.last().unwrap();
            assert!(last.flat, "{kind}");
            assert_eq!(last.elements, backbone.feature_dim(), "{kind}");
            assert_eq!(backbone.default_split(), stages.len() - 1, "{kind}");
            // MAC counts are strictly increasing except across pure pool
            // stages, and layer boundaries are strictly increasing.
            for pair in stages.windows(2) {
                assert!(pair[1].cumulative_macs >= pair[0].cumulative_macs, "{kind}");
                assert!(pair[1].layer_end > pair[0].layer_end, "{kind}");
            }
            assert!(last.cumulative_macs > 0, "{kind}");
        }
    }

    #[test]
    fn splitting_at_any_stage_composes_to_the_monolithic_forward_bitwise() {
        let mut rng = StdRng::seed_from(7);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        for kind in BackboneKind::ALL {
            let reference = build(kind, 16);
            let expected = reference.infer(&x).unwrap();
            for stage in 0..reference.stage_count() {
                let boundary = reference.stages()[stage].clone();
                let (edge, tail) = build(kind, 16).split_at(stage).unwrap();
                let z = edge.infer(&x).unwrap();
                if boundary.flat {
                    assert_eq!(z.dims(), &[2, boundary.elements], "{kind} stage {stage}");
                } else {
                    assert_eq!(
                        z.dims(),
                        &[2, boundary.channels, boundary.spatial, boundary.spatial],
                        "{kind} stage {stage}"
                    );
                }
                let out = tail.infer(&z).unwrap();
                assert_eq!(out, expected, "{kind} stage {stage}");
            }
        }
    }

    #[test]
    fn split_at_rejects_out_of_range_stages() {
        let backbone = build(BackboneKind::MobileStyle, 16);
        let count = backbone.stage_count();
        assert!(backbone.split_at(count).is_err());
    }

    #[test]
    fn rejects_too_small_inputs() {
        let mut rng = StdRng::seed_from(4);
        assert!(Backbone::new(
            BackboneConfig::new(BackboneKind::EfficientStyle, 3, 8),
            &mut rng
        )
        .is_err());
        assert!(
            Backbone::new(BackboneConfig::new(BackboneKind::VggStyle, 0, 24), &mut rng).is_err()
        );
    }

    #[test]
    fn display_names_mention_the_paper_models() {
        assert!(BackboneKind::VggStyle.to_string().contains("VGG16"));
        assert!(BackboneKind::MobileStyle
            .to_string()
            .contains("MobileNetV3"));
        assert!(BackboneKind::EfficientStyle
            .to_string()
            .contains("EfficientNet"));
    }
}
