//! Deterministic random number generation used for weight initialisation and
//! synthetic data generation.

/// A seedable, reproducible random number generator.
///
/// Every stochastic component in the workspace (weight initialisation, data
/// generation, data-loader shuffling, channel noise) draws from an `StdRng`
/// so experiments are exactly repeatable from a single seed — a requirement
/// for regenerating the paper's tables deterministically.
///
/// Internally this is xoshiro256++ seeded through SplitMix64 — implemented
/// locally so the workspace builds with no external crates.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::StdRng;
///
/// let mut a = StdRng::seed_from(42);
/// let mut b = StdRng::seed_from(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro256++ state, the
        // initialisation recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Derives a new independent generator from this one.
    ///
    /// Useful for handing separate streams to sub-components (e.g. per-layer
    /// initialisation) without correlating their draws.
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.next_u64())
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Use the top 24 bits so every value is exactly representable.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[low, high)`.
    pub fn uniform_range(&mut self, low: f32, high: f32) -> f32 {
        low + (high - low) * self.uniform()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller transform; discard the second sample for simplicity.
        let u1 = self.uniform().max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling over the largest multiple of `bound` to avoid
        // modulo bias.
        let zone = u64::MAX - (u64::MAX % bound as u64 + 1) % bound as u64;
        loop {
            let draw = self.next_u64();
            if draw <= zone {
                return (draw % bound as u64) as usize;
            }
        }
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, values: &mut [T]) {
        for i in (1..values.len()).rev() {
            let j = self.below(i + 1);
            values.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = StdRng::seed_from(7);
        let mut b = StdRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from(1);
        let mut b = StdRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 16);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = StdRng::seed_from(4);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn below_stays_in_bound() {
        let mut rng = StdRng::seed_from(6);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from(8);
        let mut values: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = StdRng::seed_from(9);
        let mut child = parent.fork();
        // The child stream should not simply replay the parent stream.
        let parent_next: Vec<u32> = (0..8).map(|_| parent.next_u32()).collect();
        let child_next: Vec<u32> = (0..8).map(|_| child.next_u32()).collect();
        assert_ne!(parent_next, child_next);
    }
}
