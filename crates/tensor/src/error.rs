//! Error type shared by every fallible tensor operation.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors raised by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the requested shape does not match
    /// the length of the provided data buffer.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor that was provided.
        actual: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Element count of the existing tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A convolution or pooling window does not fit the input dimensions.
    InvalidWindow {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An empty shape or zero-sized dimension where one is not allowed.
    EmptyTensor {
        /// Human-readable name of the operation.
        op: &'static str,
    },
    /// An ISA override string (the `MTLSPLIT_FORCE_ISA` environment
    /// variable, or a string fed to [`crate::Isa`]'s `FromStr`) named no
    /// known dispatch path.
    UnknownIsa {
        /// The rejected override value.
        value: String,
    },
    /// An ISA override requested a dispatch path the running CPU cannot
    /// execute (for example `MTLSPLIT_FORCE_ISA=avx512` on an AVX2-only
    /// machine).
    UnsupportedIsa {
        /// Name of the requested instruction-set path.
        isa: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape tensor with {from} elements into shape with {to} elements"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidWindow { reason } => write!(f, "invalid window: {reason}"),
            TensorError::EmptyTensor { op } => write!(f, "{op}: tensor has no elements"),
            TensorError::UnknownIsa { value } => write!(
                f,
                "unknown ISA override {value:?}: expected one of scalar, avx2, avx512"
            ),
            TensorError::UnsupportedIsa { isa } => {
                write!(f, "ISA path {isa} is not supported by this CPU")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let err = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(
            err.to_string(),
            "data length 3 does not match shape element count 4"
        );
    }

    #[test]
    fn display_shape_mismatch_names_operation() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("[2, 3]"));
        assert!(text.contains("[4, 5]"));
    }

    #[test]
    fn display_isa_errors_name_the_offender() {
        let err = TensorError::UnknownIsa {
            value: "sse9".to_string(),
        };
        assert_eq!(
            err.to_string(),
            "unknown ISA override \"sse9\": expected one of scalar, avx2, avx512"
        );
        let err = TensorError::UnsupportedIsa { isa: "avx512" };
        assert_eq!(
            err.to_string(),
            "ISA path avx512 is not supported by this CPU"
        );
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
