//! Free-standing numerical operations on matrices: row-wise softmax and
//! log-softmax used by classification losses.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Row-wise softmax of a `[batch, classes]` matrix.
///
/// Each row is shifted by its maximum before exponentiation, so the result is
/// numerically stable even for large logits.
///
/// # Errors
///
/// Returns an error if `logits` is not a rank-2 tensor or has zero columns.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use mtlsplit_tensor::{softmax_rows, Tensor};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let logits = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2])?;
/// let probs = softmax_rows(&logits)?;
/// assert!((probs.as_slice()[0] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let log_probs = log_softmax_rows(logits)?;
    Ok(log_probs.map(f32::exp))
}

/// Row-wise log-softmax of a `[batch, classes]` matrix.
///
/// # Errors
///
/// Returns an error if `logits` is not a rank-2 tensor or has zero columns.
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let mut out = vec![0.0f32; logits.len()];
    let dims = log_softmax_rows_into(logits, &mut out)?;
    Tensor::from_vec(out, &dims)
}

/// [`log_softmax_rows`] writing into a caller-provided buffer (fully
/// overwritten, so a recycled arena buffer is safe). Returns the output
/// dimensions `[rows, cols]`.
///
/// # Errors
///
/// Returns an error if `logits` is not a rank-2 tensor, has zero columns, or
/// `out` has the wrong length.
pub fn log_softmax_rows_into(logits: &Tensor, out: &mut [f32]) -> Result<[usize; 2]> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "log_softmax_rows",
            expected: 2,
            actual: logits.rank(),
        });
    }
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    if cols == 0 {
        return Err(TensorError::EmptyTensor {
            op: "log_softmax_rows",
        });
    }
    if out.len() != logits.len() {
        return Err(TensorError::LengthMismatch {
            expected: logits.len(),
            actual: out.len(),
        });
    }
    out.copy_from_slice(logits.as_slice());
    // Three passes per row so the two subtraction sweeps run through the
    // active dispatch table's vectorised subtract kernel. Splitting the
    // original fused `*v -= max; sum += v.exp()` loop changes no bits:
    // subtraction results are identical either way and the exp-sum still
    // accumulates in ascending column order.
    let kt = crate::simd::kernels();
    for r in 0..rows {
        let row = &mut out[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        (kt.sub)(row, max);
        let mut sum = 0.0f32;
        for v in row.iter() {
            sum += v.exp();
        }
        (kt.sub)(row, sum.ln());
    }
    Ok([rows, cols])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 3.0, 3.0, 3.0], &[2, 3]).unwrap();
        let probs = softmax_rows(&logits).unwrap();
        for r in 0..2 {
            let row_sum: f32 = probs.row(r).unwrap().as_slice().iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let probs = softmax_rows(&logits).unwrap();
        assert!(probs.as_slice().iter().all(|p| p.is_finite()));
        assert!(probs.as_slice()[1] > probs.as_slice()[0]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = Tensor::from_vec(vec![0.2, 0.8, -0.3, 1.5], &[2, 2]).unwrap();
        let a = log_softmax_rows(&logits).unwrap();
        let b = softmax_rows(&logits).unwrap().map(f32::ln);
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn uniform_logits_give_uniform_probabilities() {
        let logits = Tensor::zeros(&[1, 4]);
        let probs = softmax_rows(&logits).unwrap();
        for &p in probs.as_slice() {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_non_matrix_input() {
        assert!(softmax_rows(&Tensor::zeros(&[4])).is_err());
        assert!(log_softmax_rows(&Tensor::zeros(&[2, 2, 2])).is_err());
    }

    /// The vectorised subtraction sweeps must not change a bit relative to
    /// the scalar path, on ragged row lengths that exercise the tails.
    #[test]
    fn log_softmax_is_bit_identical_across_isa_paths() {
        use crate::rng::StdRng;
        use crate::simd::Isa;
        let mut rng = StdRng::seed_from(0x105F);
        for cols in [1usize, 7, 16, 33, 100] {
            let data: Vec<f32> = (0..4 * cols).map(|_| rng.normal_with(0.0, 3.0)).collect();
            let logits = Tensor::from_vec(data, &[4, cols]).unwrap();
            let reference = Isa::Scalar
                .with(|| log_softmax_rows(&logits).unwrap())
                .unwrap();
            for isa in Isa::available() {
                let out = isa.with(|| log_softmax_rows(&logits).unwrap()).unwrap();
                for (i, (x, y)) in out.as_slice().iter().zip(reference.as_slice()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "isa={isa} cols={cols} element {i}: {x} vs {y}"
                    );
                }
            }
        }
    }
}
