//! 2-D convolution kernels (forward and backward) in NCHW layout.
//!
//! The forward pass uses an im2col + matrix-multiplication formulation, which
//! is the standard CPU strategy and doubles as the kernel measured by the
//! Criterion benchmarks. The backward pass uses a direct accumulation loop,
//! which is easier to audit for correctness and is exercised against
//! numerical gradients in the test-suite.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Static description of a 2-D convolution.
///
/// Grouped convolution is supported; `groups == in_channels` with
/// `out_channels == in_channels` yields a depthwise convolution, the building
/// block of the MobileNet-style backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding added to both sides of both spatial axes.
    pub padding: usize,
    /// Number of channel groups (1 for a dense convolution).
    pub groups: usize,
}

impl Conv2dSpec {
    /// Creates a dense (ungrouped) convolution specification.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// Sets the stride, returning the updated spec.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding, returning the updated spec.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the group count, returning the updated spec.
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// Spatial output size for the given input size.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel does not fit the padded input or the
    /// configuration is internally inconsistent (zero stride, channel counts
    /// not divisible by `groups`).
    pub fn output_size(&self, height: usize, width: usize) -> Result<(usize, usize)> {
        self.validate()?;
        let padded_h = height + 2 * self.padding;
        let padded_w = width + 2 * self.padding;
        if self.kernel > padded_h || self.kernel > padded_w {
            return Err(TensorError::InvalidWindow {
                reason: format!(
                    "kernel {} does not fit padded input {}x{}",
                    self.kernel, padded_h, padded_w
                ),
            });
        }
        Ok((
            (padded_h - self.kernel) / self.stride + 1,
            (padded_w - self.kernel) / self.stride + 1,
        ))
    }

    /// Expected weight tensor dimensions: `[out, in/groups, k, k]`.
    pub fn weight_dims(&self) -> [usize; 4] {
        [
            self.out_channels,
            self.in_channels / self.groups.max(1),
            self.kernel,
            self.kernel,
        ]
    }

    fn validate(&self) -> Result<()> {
        if self.stride == 0 || self.kernel == 0 || self.groups == 0 {
            return Err(TensorError::InvalidWindow {
                reason: "kernel, stride and groups must be positive".to_string(),
            });
        }
        if !self.in_channels.is_multiple_of(self.groups)
            || !self.out_channels.is_multiple_of(self.groups)
        {
            return Err(TensorError::InvalidWindow {
                reason: format!(
                    "channels ({} in, {} out) must be divisible by groups ({})",
                    self.in_channels, self.out_channels, self.groups
                ),
            });
        }
        Ok(())
    }
}

fn check_input(input: &Tensor, spec: &Conv2dSpec) -> Result<(usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.rank(),
        });
    }
    let dims = input.dims();
    if dims[1] != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: dims.to_vec(),
            rhs: spec.weight_dims().to_vec(),
        });
    }
    Ok((dims[0], dims[2], dims[3]))
}

fn check_weight(weight: &Tensor, spec: &Conv2dSpec) -> Result<()> {
    if weight.dims() != spec.weight_dims() {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: weight.dims().to_vec(),
            rhs: spec.weight_dims().to_vec(),
        });
    }
    Ok(())
}

/// Unfolds `input` (`[batch, channels, h, w]`) into a matrix of sliding
/// windows with shape `[batch * out_h * out_w, channels * k * k]`.
///
/// The `spec` only uses `kernel`, `stride` and `padding`; channel counts are
/// taken from the input.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the window does not fit.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 4,
            actual: input.rank(),
        });
    }
    let [batch, channels, height, width] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let probe = Conv2dSpec {
        in_channels: channels,
        out_channels: channels,
        ..*spec
    };
    let (out_h, out_w) = probe.output_size(height, width)?;
    let k = spec.kernel;
    let cols_per_row = channels * k * k;
    let mut out = vec![0.0f32; batch * out_h * out_w * cols_per_row];
    let src = input.as_slice();
    let pad = spec.padding as isize;
    for b in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_base = ((b * out_h + oy) * out_w + ox) * cols_per_row;
                for c in 0..channels {
                    for ky in 0..k {
                        let in_y = (oy * spec.stride + ky) as isize - pad;
                        for kx in 0..k {
                            let in_x = (ox * spec.stride + kx) as isize - pad;
                            let col = (c * k + ky) * k + kx;
                            let value = if in_y >= 0
                                && in_y < height as isize
                                && in_x >= 0
                                && in_x < width as isize
                            {
                                src[((b * channels + c) * height + in_y as usize) * width
                                    + in_x as usize]
                            } else {
                                0.0
                            };
                            out[row_base + col] = value;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch * out_h * out_w, cols_per_row])
}

/// Folds an im2col matrix back into an image, accumulating overlapping
/// windows. This is the adjoint of [`im2col`] and is used by the
/// convolution backward pass with respect to the input.
///
/// # Errors
///
/// Returns an error if `cols` does not have the shape produced by [`im2col`]
/// for the given `image_dims` (`[batch, channels, h, w]`) and `spec`.
pub fn col2im(cols: &Tensor, image_dims: &[usize; 4], spec: &Conv2dSpec) -> Result<Tensor> {
    let [batch, channels, height, width] = *image_dims;
    let probe = Conv2dSpec {
        in_channels: channels,
        out_channels: channels,
        ..*spec
    };
    let (out_h, out_w) = probe.output_size(height, width)?;
    let k = spec.kernel;
    let cols_per_row = channels * k * k;
    let expected = [batch * out_h * out_w, cols_per_row];
    if cols.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.dims().to_vec(),
            rhs: expected.to_vec(),
        });
    }
    let mut out = vec![0.0f32; batch * channels * height * width];
    let src = cols.as_slice();
    let pad = spec.padding as isize;
    for b in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_base = ((b * out_h + oy) * out_w + ox) * cols_per_row;
                for c in 0..channels {
                    for ky in 0..k {
                        let in_y = (oy * spec.stride + ky) as isize - pad;
                        for kx in 0..k {
                            let in_x = (ox * spec.stride + kx) as isize - pad;
                            if in_y >= 0
                                && in_y < height as isize
                                && in_x >= 0
                                && in_x < width as isize
                            {
                                let col = (c * k + ky) * k + kx;
                                out[((b * channels + c) * height + in_y as usize) * width
                                    + in_x as usize] += src[row_base + col];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch, channels, height, width])
}

/// 2-D convolution forward pass.
///
/// * `input` — `[batch, in_channels, h, w]`
/// * `weight` — `[out_channels, in_channels / groups, k, k]`
/// * `bias` — optional `[out_channels]`
///
/// Returns `[batch, out_channels, out_h, out_w]`.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with `spec` or the kernel does
/// not fit the padded input.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use mtlsplit_tensor::{conv2d, Conv2dSpec, Tensor};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let spec = Conv2dSpec::new(1, 1, 3).with_padding(1);
/// let input = Tensor::ones(&[1, 1, 4, 4]);
/// let weight = Tensor::ones(&[1, 1, 3, 3]);
/// let out = conv2d(&input, &weight, None, &spec)?;
/// assert_eq!(out.dims(), &[1, 1, 4, 4]);
/// // The centre pixels see the full 3x3 window of ones.
/// assert_eq!(out.at(&[0, 0, 1, 1])?, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    let (batch, height, width) = check_input(input, spec)?;
    check_weight(weight, spec)?;
    if let Some(b) = bias {
        if b.len() != spec.out_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d bias",
                lhs: b.dims().to_vec(),
                rhs: vec![spec.out_channels],
            });
        }
    }
    let (out_h, out_w) = spec.output_size(height, width)?;
    let groups = spec.groups;
    let cin_g = spec.in_channels / groups;
    let cout_g = spec.out_channels / groups;
    let k = spec.kernel;
    let mut out = vec![0.0f32; batch * spec.out_channels * out_h * out_w];
    let src = input.as_slice();
    let w = weight.as_slice();
    let pad = spec.padding as isize;

    for b in 0..batch {
        for g in 0..groups {
            for oc_local in 0..cout_g {
                let oc = g * cout_g + oc_local;
                let bias_val = bias.map_or(0.0, |t| t.as_slice()[oc]);
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let mut acc = bias_val;
                        for ic_local in 0..cin_g {
                            let ic = g * cin_g + ic_local;
                            let w_base = ((oc * cin_g + ic_local) * k) * k;
                            let in_base = (b * spec.in_channels + ic) * height * width;
                            for ky in 0..k {
                                let in_y = (oy * spec.stride + ky) as isize - pad;
                                if in_y < 0 || in_y >= height as isize {
                                    continue;
                                }
                                let row_base = in_base + in_y as usize * width;
                                let w_row = w_base + ky * k;
                                for kx in 0..k {
                                    let in_x = (ox * spec.stride + kx) as isize - pad;
                                    if in_x < 0 || in_x >= width as isize {
                                        continue;
                                    }
                                    acc += src[row_base + in_x as usize] * w[w_row + kx];
                                }
                            }
                        }
                        out[((b * spec.out_channels + oc) * out_h + oy) * out_w + ox] = acc;
                    }
                }
            }
        }
    }
    Ok(
        Tensor::from_vec(out, &[batch, spec.out_channels, out_h, out_w])
            .expect("conv2d output buffer matches computed shape"),
    )
}

/// Gradients of a 2-D convolution.
///
/// Given the forward inputs and `grad_output` (`[batch, out_channels, out_h,
/// out_w]`), returns `(grad_input, grad_weight, grad_bias)` with the same
/// shapes as `input`, `weight` and `[out_channels]` respectively.
///
/// # Errors
///
/// Returns an error if any shape disagrees with `spec`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (batch, height, width) = check_input(input, spec)?;
    check_weight(weight, spec)?;
    let (out_h, out_w) = spec.output_size(height, width)?;
    let expected = [batch, spec.out_channels, out_h, out_w];
    if grad_output.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: expected.to_vec(),
        });
    }
    let groups = spec.groups;
    let cin_g = spec.in_channels / groups;
    let cout_g = spec.out_channels / groups;
    let k = spec.kernel;
    let pad = spec.padding as isize;

    let src = input.as_slice();
    let w = weight.as_slice();
    let go = grad_output.as_slice();

    let mut grad_input = vec![0.0f32; src.len()];
    let mut grad_weight = vec![0.0f32; w.len()];
    let mut grad_bias = vec![0.0f32; spec.out_channels];

    for b in 0..batch {
        for g in 0..groups {
            for oc_local in 0..cout_g {
                let oc = g * cout_g + oc_local;
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let grad = go[((b * spec.out_channels + oc) * out_h + oy) * out_w + ox];
                        if grad == 0.0 {
                            continue;
                        }
                        grad_bias[oc] += grad;
                        for ic_local in 0..cin_g {
                            let ic = g * cin_g + ic_local;
                            let w_base = ((oc * cin_g + ic_local) * k) * k;
                            let in_base = (b * spec.in_channels + ic) * height * width;
                            for ky in 0..k {
                                let in_y = (oy * spec.stride + ky) as isize - pad;
                                if in_y < 0 || in_y >= height as isize {
                                    continue;
                                }
                                let row_base = in_base + in_y as usize * width;
                                let w_row = w_base + ky * k;
                                for kx in 0..k {
                                    let in_x = (ox * spec.stride + kx) as isize - pad;
                                    if in_x < 0 || in_x >= width as isize {
                                        continue;
                                    }
                                    let idx = row_base + in_x as usize;
                                    grad_input[idx] += grad * w[w_row + kx];
                                    grad_weight[w_row + kx] += grad * src[idx];
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    Ok((
        Tensor::from_vec(grad_input, input.dims())?,
        Tensor::from_vec(grad_weight, weight.dims())?,
        Tensor::from_vec(grad_bias, &[spec.out_channels])?,
    ))
}

/// Convolution forward pass computed through [`im2col`] and matrix
/// multiplication. Only dense (`groups == 1`) convolutions are supported;
/// used as a cross-check for [`conv2d`] and as the benchmark kernel.
///
/// # Errors
///
/// Returns an error for grouped specifications or inconsistent shapes.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    if spec.groups != 1 {
        return Err(TensorError::InvalidWindow {
            reason: "conv2d_im2col supports only groups == 1".to_string(),
        });
    }
    let (batch, height, width) = check_input(input, spec)?;
    check_weight(weight, spec)?;
    let (out_h, out_w) = spec.output_size(height, width)?;
    let cols = im2col(input, spec)?;
    let k = spec.kernel;
    let w_mat = weight.reshape(&[spec.out_channels, spec.in_channels * k * k])?;
    // [batch*out_h*out_w, cin*k*k] x [cin*k*k, cout]
    let mut out_mat = cols.matmul(&w_mat.transpose()?)?;
    if let Some(b) = bias {
        out_mat = out_mat.add_row_broadcast(b)?;
    }
    // Reorder [batch, out_h, out_w, cout] -> [batch, cout, out_h, out_w].
    let flat = out_mat.as_slice();
    let mut out = vec![0.0f32; batch * spec.out_channels * out_h * out_w];
    for b in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row = ((b * out_h + oy) * out_w + ox) * spec.out_channels;
                for oc in 0..spec.out_channels {
                    out[((b * spec.out_channels + oc) * out_h + oy) * out_w + ox] = flat[row + oc];
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch, spec.out_channels, out_h, out_w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn finite_difference_check(spec: Conv2dSpec, input_dims: [usize; 4], seed: u64) {
        let mut rng = StdRng::seed_from(seed);
        let input = Tensor::randn(&input_dims, 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[spec.out_channels], 0.0, 0.5, &mut rng);
        let out = conv2d(&input, &weight, Some(&bias), &spec).unwrap();
        // Scalar loss: sum of outputs weighted by a fixed random tensor.
        let weights = Tensor::randn(out.dims(), 0.0, 1.0, &mut rng);
        let grad_output = weights.clone();
        let (gi, gw, gb) = conv2d_backward(&input, &weight, &grad_output, &spec).unwrap();

        let loss = |inp: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d(inp, w, Some(b), &spec)
                .unwrap()
                .mul(&weights)
                .unwrap()
                .sum()
        };

        let eps = 1e-2;
        // Spot-check a handful of coordinates in each gradient tensor.
        for idx in [0usize, input.len() / 2, input.len() - 1] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num = (loss(&plus, &weight, &bias) - loss(&minus, &weight, &bias)) / (2.0 * eps);
            let ana = gi.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "grad_input[{idx}]: numerical {num} vs analytical {ana}"
            );
        }
        for idx in [0usize, weight.len() / 2, weight.len() - 1] {
            let mut plus = weight.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &plus, &bias) - loss(&input, &minus, &bias)) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "grad_weight[{idx}]: numerical {num} vs analytical {ana}"
            );
        }
        for idx in 0..spec.out_channels {
            let mut plus = bias.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = bias.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &weight, &plus) - loss(&input, &weight, &minus)) / (2.0 * eps);
            let ana = gb.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "grad_bias[{idx}]: numerical {num} vs analytical {ana}"
            );
        }
    }

    #[test]
    fn output_size_accounts_for_stride_and_padding() {
        let spec = Conv2dSpec::new(3, 8, 3).with_stride(2).with_padding(1);
        assert_eq!(spec.output_size(8, 8).unwrap(), (4, 4));
        let spec = Conv2dSpec::new(3, 8, 3);
        assert_eq!(spec.output_size(8, 8).unwrap(), (6, 6));
    }

    #[test]
    fn output_size_rejects_oversized_kernel() {
        let spec = Conv2dSpec::new(1, 1, 5);
        assert!(spec.output_size(3, 3).is_err());
    }

    #[test]
    fn spec_rejects_bad_groups() {
        let spec = Conv2dSpec::new(3, 8, 3).with_groups(2);
        assert!(spec.output_size(8, 8).is_err());
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1 is the identity for a single channel.
        let spec = Conv2dSpec::new(1, 1, 1);
        let mut rng = StdRng::seed_from(1);
        let input = Tensor::randn(&[2, 1, 5, 5], 0.0, 1.0, &mut rng);
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&input, &weight, None, &spec).unwrap();
        assert!(out.allclose(&input, 1e-6));
    }

    #[test]
    fn known_3x3_convolution() {
        let spec = Conv2dSpec::new(1, 1, 3);
        // 4x4 input of increasing values, 3x3 averaging-like kernel of ones.
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d(&input, &weight, None, &spec).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        // Top-left window: rows 0..3, cols 0..3 = 0+1+2+4+5+6+8+9+10 = 45.
        assert_eq!(out.at(&[0, 0, 0, 0]).unwrap(), 45.0);
        assert_eq!(out.at(&[0, 0, 1, 1]).unwrap(), 45.0 + 9.0 * 5.0);
    }

    #[test]
    fn bias_is_added_to_every_output_position() {
        let spec = Conv2dSpec::new(1, 2, 1);
        let input = Tensor::zeros(&[1, 1, 3, 3]);
        let weight = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), &spec).unwrap();
        assert_eq!(out.at(&[0, 0, 1, 1]).unwrap(), 1.5);
        assert_eq!(out.at(&[0, 1, 2, 2]).unwrap(), -2.0);
    }

    #[test]
    fn depthwise_convolution_keeps_channels_separate() {
        // groups == channels: each output channel only sees its own input channel.
        let spec = Conv2dSpec::new(2, 2, 1).with_groups(2);
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let weight = Tensor::from_vec(vec![2.0, 3.0], &[2, 1, 1, 1]).unwrap();
        let out = conv2d(&input, &weight, None, &spec).unwrap();
        assert_eq!(out.at(&[0, 0, 0, 0]).unwrap(), 2.0);
        assert_eq!(out.at(&[0, 1, 0, 0]).unwrap(), 30.0);
    }

    #[test]
    fn im2col_matmul_matches_direct_convolution() {
        let spec = Conv2dSpec::new(3, 5, 3).with_padding(1).with_stride(2);
        let mut rng = StdRng::seed_from(3);
        let input = Tensor::randn(&[2, 3, 9, 9], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[5], 0.0, 0.5, &mut rng);
        let direct = conv2d(&input, &weight, Some(&bias), &spec).unwrap();
        let via_cols = conv2d_im2col(&input, &weight, Some(&bias), &spec).unwrap();
        assert!(direct.allclose(&via_cols, 1e-4));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for any x, y — the defining property
        // of the adjoint, which is what the backward pass relies on.
        let spec = Conv2dSpec::new(2, 2, 3).with_padding(1);
        let dims = [1usize, 2, 5, 5];
        let mut rng = StdRng::seed_from(4);
        let x = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 0.0, 1.0, &mut rng);
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im(&y, &dims, &spec).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn backward_matches_finite_differences_dense() {
        finite_difference_check(Conv2dSpec::new(2, 3, 3).with_padding(1), [1, 2, 5, 5], 10);
    }

    #[test]
    fn backward_matches_finite_differences_strided() {
        finite_difference_check(
            Conv2dSpec::new(3, 4, 3).with_padding(1).with_stride(2),
            [2, 3, 6, 6],
            11,
        );
    }

    #[test]
    fn backward_matches_finite_differences_depthwise() {
        finite_difference_check(
            Conv2dSpec::new(4, 4, 3).with_padding(1).with_groups(4),
            [1, 4, 5, 5],
            12,
        );
    }

    #[test]
    fn backward_rejects_wrong_grad_output_shape() {
        let spec = Conv2dSpec::new(1, 1, 3);
        let input = Tensor::zeros(&[1, 1, 5, 5]);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        let wrong = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(conv2d_backward(&input, &weight, &wrong, &spec).is_err());
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let spec = Conv2dSpec::new(3, 4, 3);
        let input = Tensor::zeros(&[1, 2, 5, 5]);
        let weight = Tensor::zeros(&spec.weight_dims());
        assert!(conv2d(&input, &weight, None, &spec).is_err());
    }
}
