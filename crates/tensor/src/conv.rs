//! 2-D convolution kernels (forward and backward) in NCHW layout.
//!
//! Every convolution in this crate — dense, grouped and depthwise, forward
//! *and* backward — is one lowering away from the packed blocked GEMM in
//! [`crate::kernels`]:
//!
//! * **Forward**: per `(batch, group)` unit the input window is unfolded
//!   channel-major into a `[cin/g * k * k, out_h * out_w]` column matrix
//!   and multiplied by the group's `[cout/g, cin/g * k * k]` weight matrix,
//!   writing straight into the contiguous NCHW output slice (the bias — and
//!   an optionally fused batch-norm and activation — ride in the GEMM's
//!   [`Epilogue`]). Depthwise convolutions (`cin_g == 1`) land on the
//!   GEMM's single-row GEMV path, which skips panel packing entirely — the
//!   fix for the old depthwise slow path, where packing cost dwarfed the
//!   `K = k * k` arithmetic. The im2col scratch is thread-local and reused
//!   across calls — the forward hot path allocates nothing beyond its
//!   output, and [`conv2d_fused`] not even that.
//! * **Backward**: `grad_input` is `Wᵀ x grad_out` folded back through the
//!   adjoint of the unfold (col2im), and `grad_weight` is
//!   `grad_out x colsᵀ` with the batch dimension concatenated into the
//!   GEMM's `K` dimension — two GEMMs, no direct accumulation loops.
//!
//! Units are spread over scoped threads (each `(batch, group)` output slice
//! is written by exactly one thread) and the GEMM itself partitions output
//! rows, so convolution results are bit-identical for every
//! [`crate::Parallelism`] setting. The seed's direct 7-deep loop survives
//! only as the `#[cfg(test)]` oracle that the GEMM formulation is
//! property-tested against.

use crate::error::{Result, TensorError};
use crate::kernels::{
    sgemm_epilogue_quiet, sgemm_quiet, Bias, BiasAxis, ChannelNorm, Epilogue, GradMask,
};
use crate::parallel::{for_each_unit, for_each_unit_pair, threads_for_macs, Parallelism};
use crate::tensor::Tensor;
use crate::EpilogueActivation;
use mtlsplit_obs as obs;

/// What a convolution call fuses into its kernels' write-back: an optional
/// following batch-norm (per output channel) and an optional following
/// activation, applied in that order. Both are bit-identical to running the
/// separate passes — see [`ChannelNorm`] and [`EpilogueActivation`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvFusion<'a> {
    /// Batch-norm statistics over the convolution's output channels.
    pub norm: Option<ChannelNorm<'a>>,
    /// Activation applied after the norm (or directly, without one).
    pub activation: Option<EpilogueActivation>,
}

impl<'a> ConvFusion<'a> {
    /// No fusion: the plain convolution.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fuses just an activation.
    pub fn activation(activation: EpilogueActivation) -> Self {
        Self {
            norm: None,
            activation: Some(activation),
        }
    }
}

/// Runs `f` on a thread-local, reusable `f32` scratch buffer of at least
/// `len` elements.
///
/// The buffer is only ever grown, never shrunk, so the steady-state hot
/// loop allocates nothing — the same pattern as the GEMM packing scratch.
/// Callers must fully overwrite every slot they read (both users —
/// [`im2col_group`] and the `beta == 0` GEMM output — do).
fn with_cols_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    thread_local! {
        static COLS: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    COLS.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Static description of a 2-D convolution.
///
/// Grouped convolution is supported; `groups == in_channels` with
/// `out_channels == in_channels` yields a depthwise convolution, the building
/// block of the MobileNet-style backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding added to both sides of both spatial axes.
    pub padding: usize,
    /// Number of channel groups (1 for a dense convolution).
    pub groups: usize,
}

impl Conv2dSpec {
    /// Creates a dense (ungrouped) convolution specification.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// Sets the stride, returning the updated spec.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding, returning the updated spec.
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the group count, returning the updated spec.
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// Spatial output size for the given input size.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel does not fit the padded input or the
    /// configuration is internally inconsistent (zero stride, channel counts
    /// not divisible by `groups`).
    pub fn output_size(&self, height: usize, width: usize) -> Result<(usize, usize)> {
        self.validate()?;
        let padded_h = height + 2 * self.padding;
        let padded_w = width + 2 * self.padding;
        if self.kernel > padded_h || self.kernel > padded_w {
            return Err(TensorError::InvalidWindow {
                reason: format!(
                    "kernel {} does not fit padded input {}x{}",
                    self.kernel, padded_h, padded_w
                ),
            });
        }
        Ok((
            (padded_h - self.kernel) / self.stride + 1,
            (padded_w - self.kernel) / self.stride + 1,
        ))
    }

    /// Expected weight tensor dimensions: `[out, in/groups, k, k]`.
    pub fn weight_dims(&self) -> [usize; 4] {
        [
            self.out_channels,
            self.in_channels / self.groups.max(1),
            self.kernel,
            self.kernel,
        ]
    }

    fn validate(&self) -> Result<()> {
        if self.stride == 0 || self.kernel == 0 || self.groups == 0 {
            return Err(TensorError::InvalidWindow {
                reason: "kernel, stride and groups must be positive".to_string(),
            });
        }
        if !self.in_channels.is_multiple_of(self.groups)
            || !self.out_channels.is_multiple_of(self.groups)
        {
            return Err(TensorError::InvalidWindow {
                reason: format!(
                    "channels ({} in, {} out) must be divisible by groups ({})",
                    self.in_channels, self.out_channels, self.groups
                ),
            });
        }
        Ok(())
    }
}

fn check_input(input: &Tensor, spec: &Conv2dSpec) -> Result<(usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.rank(),
        });
    }
    let dims = input.dims();
    if dims[1] != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: dims.to_vec(),
            rhs: spec.weight_dims().to_vec(),
        });
    }
    Ok((dims[0], dims[2], dims[3]))
}

fn check_weight(weight: &Tensor, spec: &Conv2dSpec) -> Result<()> {
    if weight.dims() != spec.weight_dims() {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: weight.dims().to_vec(),
            rhs: spec.weight_dims().to_vec(),
        });
    }
    Ok(())
}

/// Pre-computed geometry shared by the forward and backward drivers.
#[derive(Clone, Copy)]
struct ConvGeometry {
    batch: usize,
    height: usize,
    width: usize,
    out_h: usize,
    out_w: usize,
    /// Input channels per group.
    cin_g: usize,
    /// Output channels per group.
    cout_g: usize,
    /// Rows of one group's column matrix: `cin_g * k * k`.
    ckk: usize,
    /// One spatial plane of the output: `out_h * out_w`.
    out_plane: usize,
}

impl ConvGeometry {
    fn new(input: &Tensor, spec: &Conv2dSpec) -> Result<Self> {
        let (batch, height, width) = check_input(input, spec)?;
        let (out_h, out_w) = spec.output_size(height, width)?;
        let cin_g = spec.in_channels / spec.groups;
        let cout_g = spec.out_channels / spec.groups;
        Ok(Self {
            batch,
            height,
            width,
            out_h,
            out_w,
            cin_g,
            cout_g,
            ckk: cin_g * spec.kernel * spec.kernel,
            out_plane: out_h * out_w,
        })
    }
}

/// Unfolds one `(batch, group)` unit of `src` channel-major into the
/// `[ckk, out_plane]` column matrix `dst`: row `(ic_local * k + ky) * k +
/// kx` holds that tap's value for every output position `oy * out_w + ox`
/// (out-of-image taps are zero).
fn im2col_group(
    dst: &mut [f32],
    src: &[f32],
    geometry: &ConvGeometry,
    spec: &Conv2dSpec,
    batch_index: usize,
    channel_start: usize,
) {
    // Single choke point for column materialisation: every unfold in the
    // crate lands here, so one relaxed add accounts all im2col bandwidth.
    obs::metrics::IM2COL_BYTES
        .add((geometry.ckk * geometry.out_plane * std::mem::size_of::<f32>()) as u64);
    let g = geometry;
    let k = spec.kernel;
    let pad = spec.padding as isize;
    for ic_local in 0..g.cin_g {
        let in_base =
            (batch_index * spec.in_channels + channel_start + ic_local) * g.height * g.width;
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic_local * k + ky) * k + kx;
                let out_row = &mut dst[row * g.out_plane..][..g.out_plane];
                for oy in 0..g.out_h {
                    let in_y = (oy * spec.stride + ky) as isize - pad;
                    let dst_row = &mut out_row[oy * g.out_w..(oy + 1) * g.out_w];
                    if in_y < 0 || in_y >= g.height as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &src[in_base + in_y as usize * g.width..][..g.width];
                    // `in_x = ox * stride + kx - pad` is monotonic in `ox`,
                    // so the in-image positions form one contiguous run
                    // `[ox_lo, ox_hi)`; everything outside it is padding.
                    // Splitting the row that way replaces the per-element
                    // bounds check with two fills and (for stride 1) a plain
                    // `copy_from_slice`, which stays fast without
                    // target-specific codegen.
                    let ox_lo = usize::try_from(-(kx as isize - pad))
                        .map_or(0, |gap| gap.div_ceil(spec.stride))
                        .min(g.out_w);
                    let ox_hi = usize::try_from(g.width as isize - 1 - (kx as isize - pad))
                        .map_or(0, |last| last / spec.stride + 1)
                        .min(g.out_w)
                        .max(ox_lo);
                    dst_row[..ox_lo].fill(0.0);
                    dst_row[ox_hi..].fill(0.0);
                    if ox_lo == ox_hi {
                        continue;
                    }
                    let first = ox_lo * spec.stride + kx - pad as usize;
                    if spec.stride == 1 {
                        dst_row[ox_lo..ox_hi]
                            .copy_from_slice(&src_row[first..first + (ox_hi - ox_lo)]);
                    } else {
                        for (slot, ox) in dst_row[ox_lo..ox_hi].iter_mut().zip(ox_lo..) {
                            *slot = src_row[ox * spec.stride + kx - pad as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col_group`]: accumulates a `[ckk, out_plane]` column
/// matrix back into one `(batch, group)` unit `[cin_g, height, width]` of
/// the image gradient.
fn col2im_group(cols: &[f32], unit: &mut [f32], geometry: &ConvGeometry, spec: &Conv2dSpec) {
    let g = geometry;
    let k = spec.kernel;
    let pad = spec.padding as isize;
    for ic_local in 0..g.cin_g {
        let unit_base = ic_local * g.height * g.width;
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic_local * k + ky) * k + kx;
                let src_row = &cols[row * g.out_plane..][..g.out_plane];
                for oy in 0..g.out_h {
                    let in_y = (oy * spec.stride + ky) as isize - pad;
                    if in_y < 0 || in_y >= g.height as isize {
                        continue;
                    }
                    let dst_row = &mut unit[unit_base + in_y as usize * g.width..][..g.width];
                    for (ox, &value) in src_row[oy * g.out_w..(oy + 1) * g.out_w].iter().enumerate()
                    {
                        let in_x = (ox * spec.stride + kx) as isize - pad;
                        if in_x >= 0 && in_x < g.width as isize {
                            dst_row[in_x as usize] += value;
                        }
                    }
                }
            }
        }
    }
}

/// Splits the ambient thread budget between `(batch, group)` units and the
/// per-unit GEMM: up to `units` threads spread over the units, and whatever
/// budget remains is handed to each unit's GEMM row partitioning (so two
/// units on a 16-core host run two 8-thread GEMMs, not two single-threaded
/// ones). `macs` is the convolution's total multiply-accumulate count — the
/// per-ISA FLOP floor of the active dispatch table keeps tiny problems on
/// the calling thread, so small convolutions never pay scoped-thread spawn
/// cost. The split never affects results: both levels partition output
/// elements only.
fn split_threads(units: usize, macs: usize) -> (usize, Parallelism) {
    let threads = threads_for_macs(
        Parallelism::current().resolve(),
        macs,
        crate::simd::kernels().min_macs_per_thread,
    );
    if threads <= 1 {
        (1, Parallelism::single())
    } else {
        let unit_threads = threads.min(units.max(1));
        (unit_threads, Parallelism::fixed(threads / unit_threads))
    }
}

/// 2-D convolution forward pass.
///
/// * `input` — `[batch, in_channels, h, w]`
/// * `weight` — `[out_channels, in_channels / groups, k, k]`
/// * `bias` — optional `[out_channels]`
///
/// Returns `[batch, out_channels, out_h, out_w]`.
///
/// Dense, grouped and depthwise convolutions all route through grouped
/// im2col + GEMM (see the module docs); results are bit-identical for every
/// [`Parallelism`] thread count.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with `spec` or the kernel does
/// not fit the padded input.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use mtlsplit_tensor::{conv2d, Conv2dSpec, Tensor};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let spec = Conv2dSpec::new(1, 1, 3).with_padding(1);
/// let input = Tensor::ones(&[1, 1, 4, 4]);
/// let weight = Tensor::ones(&[1, 1, 3, 3]);
/// let out = conv2d(&input, &weight, None, &spec)?;
/// assert_eq!(out.dims(), &[1, 1, 4, 4]);
/// // The centre pixels see the full 3x3 window of ones.
/// assert_eq!(out.at(&[0, 0, 1, 1])?, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    let g = ConvGeometry::new(input, spec)?;
    let mut out = vec![0.0f32; g.batch * spec.out_channels * g.out_plane];
    let dims = conv2d_fused(input, weight, bias, spec, ConvFusion::none(), &mut out)?;
    Ok(Tensor::from_vec(out, &dims).expect("conv2d output buffer matches computed shape"))
}

/// 2-D convolution forward pass writing into a caller-provided buffer, with
/// an optional activation fused into the kernel.
///
/// This is [`conv2d`] for the planned, zero-allocation inference path: `out`
/// must hold exactly `batch * out_channels * out_h * out_w` elements (its
/// prior contents are ignored and fully overwritten, so a recycled arena
/// buffer is safe), and `fusion` carries what the layer stack fused behind
/// this convolution — a following batch-norm and/or activation — applied
/// inside the GEMM epilogue instead of as separate full-tensor passes
/// (only a bias-less convolution falls back to one in-place activation
/// sweep, since it has no epilogue to carry it).
///
/// Returns the output dimensions `[batch, out_channels, out_h, out_w]`.
/// Results are bit-identical to [`conv2d`] followed by the separate
/// norm/activation passes, for every thread count.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with `spec`, the norm
/// statistics do not cover the output channels, or `out` has the wrong
/// length.
pub fn conv2d_fused(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    fusion: ConvFusion<'_>,
    out: &mut [f32],
) -> Result<[usize; 4]> {
    let g = ConvGeometry::new(input, spec)?;
    check_weight(weight, spec)?;
    if let Some(b) = bias {
        if b.len() != spec.out_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d bias",
                lhs: b.dims().to_vec(),
                rhs: vec![spec.out_channels],
            });
        }
    }
    if let Some(norm) = fusion.norm {
        if !norm.covers(spec.out_channels) {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d fused norm",
                lhs: vec![norm.channels()],
                rhs: vec![spec.out_channels],
            });
        }
    }
    let expected_len = g.batch * spec.out_channels * g.out_plane;
    if out.len() != expected_len {
        return Err(TensorError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    let src = input.as_slice();
    let w = weight.as_slice();
    let bias_values = bias.map(Tensor::as_slice);
    let units = g.batch * spec.groups;
    let unit_len = g.cout_g * g.out_plane;
    let macs = g.batch * spec.out_channels * g.out_plane * g.ckk;
    obs::metrics::GEMM_CALLS.add(units as u64);
    obs::metrics::GEMM_FLOPS.add(2 * macs as u64);
    let _span = obs::span_dims(
        "conv2d",
        obs::SpanKind::Kernel,
        [
            g.batch as u32,
            spec.out_channels as u32,
            spec.kernel as u32,
            g.out_plane as u32,
        ],
    );
    let (unit_threads, gemm_par) = split_threads(units, macs);
    for_each_unit(out, unit_len, unit_threads, |unit_index, unit| {
        let (b, group) = (unit_index / spec.groups, unit_index % spec.groups);
        if spec.kernel == 1 && spec.stride == 1 && spec.padding == 0 {
            // Pointwise (1x1) convolution: the unfolded column matrix *is*
            // the group's input slice ([cin_g, plane] channel-major), so
            // skip the im2col copy and feed the source directly. Same
            // values, same chains — bit-identical.
            let input_group = &src[(b * spec.in_channels + group * g.cin_g) * g.out_plane..]
                [..g.ckk * g.out_plane];
            conv_forward_unit(
                unit,
                input_group,
                w,
                bias_values,
                &fusion,
                &g,
                group,
                gemm_par,
            );
            return;
        }
        // General case, depthwise included: unfold into thread-local
        // scratch. Depthwise convolutions (cin_g == 1, so cout_g is 1 for
        // the paper's models) degenerate to single-row GEMMs, where
        // `sgemm_epilogue`'s m == 1 GEMV path skips panel packing entirely
        // and sweeps the unfolded rows contiguously — that is what fixed
        // the old depthwise slow path (packing cost >> the K = k*k
        // arithmetic).
        with_cols_scratch(g.ckk * g.out_plane, |cols| {
            im2col_group(cols, src, &g, spec, b, group * g.cin_g);
            conv_forward_unit(unit, cols, w, bias_values, &fusion, &g, group, gemm_par);
        });
    });
    Ok([g.batch, spec.out_channels, g.out_h, g.out_w])
}

/// One `(batch, group)` unit of the forward pass: the group's GEMM with the
/// bias (and any fused norm/activation) riding in the epilogue. Shared by
/// the scratch-backed and column-caching forward drivers, so their outputs
/// are structurally bit-identical.
#[allow(clippy::too_many_arguments)]
fn conv_forward_unit(
    unit: &mut [f32],
    cols: &[f32],
    w: &[f32],
    bias_values: Option<&[f32]>,
    fusion: &ConvFusion<'_>,
    g: &ConvGeometry,
    group: usize,
    gemm_par: Parallelism,
) {
    let bias_group = bias_values.map(|v| &v[group * g.cout_g..][..g.cout_g]);
    // Slice the norm statistics down to this group's output channels so
    // the per-row index inside the kernels is channel-local.
    let norm_group = fusion.norm.map(|nm| ChannelNorm {
        gamma: &nm.gamma[group * g.cout_g..][..g.cout_g],
        beta: &nm.beta[group * g.cout_g..][..g.cout_g],
        mean: &nm.mean[group * g.cout_g..][..g.cout_g],
        var: &nm.var[group * g.cout_g..][..g.cout_g],
        epsilon: nm.epsilon,
    });
    let w_group = &w[group * g.cout_g * g.ckk..][..g.cout_g * g.ckk];
    let row_bias = bias_group.map(|values| Bias {
        values,
        axis: BiasAxis::Row,
    });
    let epilogue = match (row_bias, norm_group) {
        (bias, Some(norm)) => Epilogue::BiasNorm {
            bias,
            norm,
            activation: fusion.activation,
        },
        (Some(bias), None) => Epilogue::with_activation(bias, fusion.activation),
        (None, None) => Epilogue::None,
    };
    sgemm_epilogue_quiet(
        false,
        false,
        g.cout_g,
        g.out_plane,
        g.ckk,
        1.0,
        w_group,
        cols,
        0.0,
        unit,
        epilogue,
        gemm_par,
    );
    // Without a bias or norm there is no epilogue to carry the
    // activation; fall back to one in-place pass over this unit.
    if bias_group.is_none() && norm_group.is_none() {
        if let Some(act) = fusion.activation {
            for x in unit.iter_mut() {
                *x = act.apply(*x);
            }
        }
    }
}

/// Length (in `f32` elements) of the im2col column cache
/// [`conv2d_fused_caching`] fills for this input: one `[ckk, out_plane]`
/// matrix per `(batch, group)` unit, or 0 for pointwise (1x1, stride 1,
/// unpadded) convolutions, which never unfold at all.
///
/// # Errors
///
/// Returns an error if the input is inconsistent with `spec`.
pub fn conv2d_cols_len(input: &Tensor, spec: &Conv2dSpec) -> Result<usize> {
    let g = ConvGeometry::new(input, spec)?;
    if spec.kernel == 1 && spec.stride == 1 && spec.padding == 0 {
        // Pointwise: the input slice is the column matrix.
        return Ok(0);
    }
    if g.cin_g == 1 && g.cout_g == 1 {
        // Depthwise: the backward pass has direct tap kernels that read the
        // input and weights without any column matrix, so caching one would
        // only cost forward bandwidth.
        return Ok(0);
    }
    Ok(g.batch * spec.groups * g.ckk * g.out_plane)
}

/// [`conv2d_fused`] that additionally writes every `(batch, group)` unit's
/// unfolded column matrix into `cols_cache` (laid out unit-major, sized by
/// [`conv2d_cols_len`]) instead of throwaway thread-local scratch, so a
/// following [`conv2d_backward_into`] can reuse the columns and skip the
/// second unfold of the training step entirely. The cached values are the
/// ones the forward GEMM consumed — reusing them is bit-identical to
/// re-unfolding.
///
/// For pointwise convolutions ([`conv2d_cols_len`] == 0) this is exactly
/// [`conv2d_fused`]; `cols_cache` must then be empty.
///
/// # Errors
///
/// Returns an error on the same shape problems as [`conv2d_fused`], or if
/// `cols_cache` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_fused_caching(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    fusion: ConvFusion<'_>,
    out: &mut [f32],
    cols_cache: &mut [f32],
) -> Result<[usize; 4]> {
    let expected = conv2d_cols_len(input, spec)?;
    if cols_cache.len() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: cols_cache.len(),
        });
    }
    if expected == 0 {
        return conv2d_fused(input, weight, bias, spec, fusion, out);
    }
    let g = ConvGeometry::new(input, spec)?;
    check_weight(weight, spec)?;
    if let Some(b) = bias {
        if b.len() != spec.out_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d bias",
                lhs: b.dims().to_vec(),
                rhs: vec![spec.out_channels],
            });
        }
    }
    if let Some(norm) = fusion.norm {
        if !norm.covers(spec.out_channels) {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d fused norm",
                lhs: vec![norm.channels()],
                rhs: vec![spec.out_channels],
            });
        }
    }
    let expected_len = g.batch * spec.out_channels * g.out_plane;
    if out.len() != expected_len {
        return Err(TensorError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    let src = input.as_slice();
    let w = weight.as_slice();
    let bias_values = bias.map(Tensor::as_slice);
    let units = g.batch * spec.groups;
    let unit_len = g.cout_g * g.out_plane;
    let macs = g.batch * spec.out_channels * g.out_plane * g.ckk;
    obs::metrics::GEMM_CALLS.add(units as u64);
    obs::metrics::GEMM_FLOPS.add(2 * macs as u64);
    let _span = obs::span_dims(
        "conv2d_cached",
        obs::SpanKind::Kernel,
        [
            g.batch as u32,
            spec.out_channels as u32,
            spec.kernel as u32,
            g.out_plane as u32,
        ],
    );
    let (unit_threads, gemm_par) = split_threads(units, macs);
    for_each_unit_pair(
        out,
        unit_len,
        cols_cache,
        g.ckk * g.out_plane,
        unit_threads,
        |unit_index, unit, unit_cols| {
            let (b, group) = (unit_index / spec.groups, unit_index % spec.groups);
            im2col_group(unit_cols, src, &g, spec, b, group * g.cin_g);
            conv_forward_unit(
                unit,
                unit_cols,
                w,
                bias_values,
                &fusion,
                &g,
                group,
                gemm_par,
            );
        },
    );
    Ok([g.batch, spec.out_channels, g.out_h, g.out_w])
}

/// Gradients of a 2-D convolution.
///
/// Given the forward inputs and `grad_output` (`[batch, out_channels, out_h,
/// out_w]`), returns `(grad_input, grad_weight, grad_bias)` with the same
/// shapes as `input`, `weight` and `[out_channels]` respectively.
///
/// Both gradients are GEMM-shaped (see the module docs): `grad_input` is
/// `Wᵀ x grad_out` folded through col2im per `(batch, group)` unit, and
/// `grad_weight` accumulates `grad_out_b x cols_bᵀ` over the batch through
/// the GEMM's `beta = 1` path — one deterministic ascending `(batch,
/// position)` accumulation chain per element, with scratch bounded by a
/// single batch item.
///
/// # Errors
///
/// Returns an error if any shape disagrees with `spec`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    let mut grad_input = vec![0.0f32; input.len()];
    let mut grad_weight = vec![0.0f32; weight.len()];
    let mut grad_bias = vec![0.0f32; spec.out_channels];
    conv2d_backward_into(
        input,
        weight,
        grad_output,
        spec,
        None,
        None,
        &mut grad_input,
        &mut grad_weight,
        &mut grad_bias,
    )?;
    Ok((
        Tensor::from_vec(grad_input, input.dims())?,
        Tensor::from_vec(grad_weight, weight.dims())?,
        Tensor::from_vec(grad_bias, &[spec.out_channels])?,
    ))
}

/// [`conv2d_backward`] writing into caller-provided buffers — the planned,
/// zero-allocation training path — with two optional planned-path fusions:
///
/// * `cols`: the forward pass's im2col columns (from
///   [`conv2d_fused_caching`], sized by [`conv2d_cols_len`]). When given,
///   the weight-gradient GEMMs read them directly and the training step's
///   second unfold disappears. Reuse is bit-identical — the columns are the
///   very values a fresh unfold would produce.
/// * `mask`: a following (in backward order) activation's gradient mask
///   over this convolution's *input* gradient. For pointwise convolutions
///   it rides the input-gradient GEMM's write-back via [`Epilogue::Mask`];
///   otherwise it is one in-place sweep after col2im. Either way the result
///   is bit-identical to the unfused grad-input followed by the standalone
///   activation backward pass.
///
/// The three gradient buffers must hold exactly `input.len()`,
/// `weight.len()` and `out_channels` elements respectively; their prior
/// contents are ignored and fully overwritten (recycled arena buffers are
/// safe). Results are bit-identical to [`conv2d_backward`] (plus the
/// separate masking pass, when fused) for every thread count.
///
/// # Errors
///
/// Returns an error if any shape disagrees with `spec` or a buffer has the
/// wrong length.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_into(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: &Conv2dSpec,
    cols: Option<&[f32]>,
    mask: Option<GradMask<'_>>,
    grad_input: &mut [f32],
    grad_weight: &mut [f32],
    grad_bias: &mut [f32],
) -> Result<()> {
    let g = ConvGeometry::new(input, spec)?;
    check_weight(weight, spec)?;
    let expected = [g.batch, spec.out_channels, g.out_h, g.out_w];
    if grad_output.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: expected.to_vec(),
        });
    }
    let src = input.as_slice();
    let w = weight.as_slice();
    let go = grad_output.as_slice();
    for (buffer, expected_len) in [
        (&*grad_input, src.len()),
        (&*grad_weight, w.len()),
        (&*grad_bias, spec.out_channels),
    ] {
        if buffer.len() != expected_len {
            return Err(TensorError::LengthMismatch {
                expected: expected_len,
                actual: buffer.len(),
            });
        }
    }
    if let Some(cached) = cols {
        let expected = conv2d_cols_len(input, spec)?;
        if cached.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: cached.len(),
            });
        }
    }
    if let Some(mask) = mask {
        if mask.input.len() != src.len() {
            return Err(TensorError::LengthMismatch {
                expected: src.len(),
                actual: mask.input.len(),
            });
        }
    }

    // grad_bias[oc] = sum of grad_output over batch and positions, ascending.
    for (oc, slot) in grad_bias.iter_mut().enumerate() {
        *slot = 0.0;
        for b in 0..g.batch {
            let plane = &go[(b * spec.out_channels + oc) * g.out_plane..][..g.out_plane];
            for &value in plane {
                *slot += value;
            }
        }
    }

    // Pointwise (1x1, stride 1, no padding) convolutions skip the lowering
    // in backward just like forward: the unfolded column matrix *is* the
    // input slice, and col2im is the identity scatter into a zeroed buffer
    // (`0.0 + v`, which is bit-identical to `v` — a beta == 0 GEMM never
    // produces a negative zero), so the input-gradient GEMM writes straight
    // into the image gradient and the weight-gradient GEMM reads the input
    // directly.
    let pointwise = spec.kernel == 1 && spec.stride == 1 && spec.padding == 0;

    // grad_input: per (batch, group) unit, grad_cols = W_gᵀ x grad_out_bg,
    // folded back through the adjoint unfold. col2im accumulates, so the
    // buffer is zeroed first — same chain head as a fresh zeroed vec.
    if !pointwise {
        grad_input.fill(0.0);
    }
    let units = g.batch * spec.groups;
    let macs = g.batch * spec.out_channels * g.out_plane * g.ckk;
    // Both backward GEMM families (grad-input and grad-weight) do the same
    // 2 * macs FLOPs each as the forward lowering.
    obs::metrics::GEMM_CALLS.add(2 * units as u64);
    obs::metrics::GEMM_FLOPS.add(4 * macs as u64);
    let _span = obs::span_dims(
        "conv2d_backward",
        obs::SpanKind::Kernel,
        [
            g.batch as u32,
            spec.out_channels as u32,
            spec.kernel as u32,
            g.out_plane as u32,
        ],
    );
    let (unit_threads, gemm_par) = split_threads(units, macs);
    let unit_len = g.cin_g * g.height * g.width;
    for_each_unit(grad_input, unit_len, unit_threads, |unit_index, unit| {
        let (b, group) = (unit_index / spec.groups, unit_index % spec.groups);
        let w_group = &w[group * g.cout_g * g.ckk..][..g.cout_g * g.ckk];
        let go_group = &go[(b * spec.out_channels + group * g.cout_g) * g.out_plane..]
            [..g.cout_g * g.out_plane];
        // This unit's slice of the fused activation mask, aligned with the
        // unit's region of the image gradient.
        let unit_mask = mask.map(|m| &m.input[unit_index * unit_len..][..unit.len()]);
        if pointwise {
            // The unit slice [cin_g, plane] is the column layout already;
            // the mask (if fused) rides the GEMM's write-back.
            let epilogue = match unit_mask {
                Some(mask_input) => Epilogue::Mask(GradMask {
                    input: mask_input,
                    grad: mask.expect("unit_mask implies mask").grad,
                }),
                None => Epilogue::None,
            };
            sgemm_epilogue_quiet(
                true,
                false,
                g.ckk,
                g.out_plane,
                g.cout_g,
                1.0,
                w_group,
                go_group,
                0.0,
                unit,
                epilogue,
                gemm_par,
            );
            return;
        }
        if g.cin_g == 1 && g.cout_g == 1 {
            // Depthwise fast path: the grad-cols "GEMM" is the rank-1 outer
            // product `w[tap] * go[pos]`, so fold it straight into the
            // col2im scatter — same tap-major accumulation order, each
            // product `fused_mul_add(w, go, 0)` replaced by the identical
            // `w * go`, and out-of-image taps (whose cols entries are zero)
            // contribute `±0` that the running sums ignore bit-exactly. No
            // per-unit GEMM call, no grad-cols materialisation.
            depthwise_grad_input_unit(unit, w_group, go_group, &g, spec);
        } else {
            with_cols_scratch(g.ckk * g.out_plane, |grad_cols| {
                sgemm_quiet(
                    true,
                    false,
                    g.ckk,
                    g.out_plane,
                    g.cout_g,
                    1.0,
                    w_group,
                    go_group,
                    0.0,
                    grad_cols,
                    gemm_par,
                );
                col2im_group(grad_cols, unit, &g, spec);
            });
        }
        if let (Some(mask_input), Some(mask)) = (unit_mask, mask) {
            // One in-place sweep: `g * d(x)`, exactly the standalone
            // activation backward product.
            for (v, &x) in unit.iter_mut().zip(mask_input) {
                *v *= mask.grad.derivative(x);
            }
        }
    });

    conv_grad_weight(src, go, spec, &g, pointwise, cols, grad_weight, macs);

    Ok(())
}

/// One depthwise `(batch, channel)` unit of the image gradient: the grad
/// columns of a depthwise convolution are the rank-1 product
/// `w[tap] * go[position]`, so the GEMM + col2im pair collapses into one
/// direct scatter. Iteration order is exactly [`col2im_group`]'s (tap-major,
/// then output positions), each scattered value is the same product the
/// GEMM produced, and sums of the form `x + ±0` are sign-insensitive here
/// (the destination never holds a negative zero), so the result is
/// bit-identical to the lowered path.
fn depthwise_grad_input_unit(
    unit: &mut [f32],
    w_tap: &[f32],
    go_unit: &[f32],
    g: &ConvGeometry,
    spec: &Conv2dSpec,
) {
    // Dispatch the common depthwise geometries to constant-folded copies of
    // the (single, `inline(always)`) body: with k/s/pad known the tap loops
    // unroll and the range arithmetic folds away — same code, same bits,
    // several times the throughput of the runtime-parameter fallback.
    match (spec.kernel, spec.stride, spec.padding) {
        (3, 1, 1) => dw_grad_input_body(unit, w_tap, go_unit, g, 3, 1, 1),
        (3, 2, 1) => dw_grad_input_body(unit, w_tap, go_unit, g, 3, 2, 1),
        (k, s, pad) => dw_grad_input_body(unit, w_tap, go_unit, g, k, s, pad),
    }
}

#[inline(always)]
fn dw_grad_input_body(
    unit: &mut [f32],
    w_tap: &[f32],
    go_unit: &[f32],
    g: &ConvGeometry,
    k: usize,
    s: usize,
    pad: usize,
) {
    for ky in 0..k {
        for kx in 0..k {
            let wv = w_tap[ky * k + kx];
            // Valid output-column range for this tap, hoisted out of the
            // scatter loop: `in_x = ox * s + kx - pad` must land in
            // `[0, width)`.
            let (lo, hi) = tap_range(g.out_w, g.width, s, kx, pad);
            if lo >= hi {
                continue;
            }
            for oy in 0..g.out_h {
                let in_y = (oy * s + ky) as isize - pad as isize;
                if in_y < 0 || in_y >= g.height as isize {
                    continue;
                }
                let dst_row = &mut unit[in_y as usize * g.width..][..g.width];
                let go_row = &go_unit[oy * g.out_w..(oy + 1) * g.out_w];
                if s == 1 {
                    // Contiguous AXPY: every destination in this tap row is
                    // touched exactly once, so the loop vectorises.
                    // `lo + kx >= pad` holds by construction of `lo`.
                    let off = lo + kx - pad;
                    for (d, &gv) in dst_row[off..off + (hi - lo)]
                        .iter_mut()
                        .zip(&go_row[lo..hi])
                    {
                        *d += wv * gv;
                    }
                } else {
                    for ox in lo..hi {
                        dst_row[ox * s + kx - pad] += wv * go_row[ox];
                    }
                }
            }
        }
    }
}

/// The output-column range `[lo, hi)` whose tap `kx` lands inside the image:
/// `0 <= ox * stride + kx - pad < width`.
#[inline(always)]
fn tap_range(out_w: usize, width: usize, stride: usize, kx: usize, pad: usize) -> (usize, usize) {
    let lo = if kx >= pad {
        0
    } else {
        (pad - kx).div_ceil(stride)
    };
    let hi = if width + pad <= kx {
        0
    } else {
        out_w.min((width + pad - kx - 1) / stride + 1)
    };
    (lo, hi.max(lo))
}

/// One group of a depthwise weight gradient, computed by direct taps: each
/// tap's accumulator runs the exact ascending `(batch, position)`
/// [`fused_mul_add`] chain the lowered GEMV ran — out-of-image taps
/// contribute an explicit `fused_mul_add(go, 0.0, acc)` step, just as their
/// zero column entries did — so the result is bit-identical with no unfold
/// and no per-batch GEMM calls at all.
fn depthwise_grad_weight_group(
    unit: &mut [f32],
    src: &[f32],
    go: &[f32],
    g: &ConvGeometry,
    spec: &Conv2dSpec,
    channel: usize,
) {
    // Same constant-folding dispatch as `depthwise_grad_input_unit`. The
    // accumulator block is a const-generic size so the k == 3 instantiation
    // holds its nine chains in registers (a larger array defeats LLVM's
    // scalar replacement and pins every FMA to the stack).
    match (spec.kernel, spec.stride, spec.padding) {
        (3, 1, 1) => dw_grad_weight_body::<9>(unit, src, go, g, spec, channel, 3, 1, 1),
        (3, 2, 1) => dw_grad_weight_body::<9>(unit, src, go, g, spec, channel, 3, 2, 1),
        (k, s, pad) if k * k <= 25 => {
            dw_grad_weight_body::<25>(unit, src, go, g, spec, channel, k, s, pad)
        }
        (k, s, pad) => dw_grad_weight_tap_outer(unit, src, go, g, spec, channel, k, s, pad),
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn dw_grad_weight_body<const TAPS: usize>(
    unit: &mut [f32],
    src: &[f32],
    go: &[f32],
    g: &ConvGeometry,
    spec: &Conv2dSpec,
    channel: usize,
    k: usize,
    s_arg: usize,
    pad_arg: usize,
) {
    use crate::kernels::fused_mul_add;
    let ckk = k * k;
    // Position-outer with one independent accumulator chain per tap: each
    // chain still runs its exact ascending (batch, position) order, but the
    // `ckk` chains interleave, hiding the FMA latency a single serial chain
    // per tap would expose.
    debug_assert!(ckk <= TAPS);
    {
        let s = s_arg;
        let pad = pad_arg;
        let mut acc = [0.0f32; TAPS];
        // Interior ranges where every tap is in-image, hoisting the bounds
        // arithmetic out of the hot loop. Columns are still processed in
        // ascending order (edge, interior, edge), so each tap's chain is
        // unchanged.
        let (mut ox_lo, mut ox_hi) = (0usize, g.out_w);
        for kx in 0..k {
            let (lo, hi) = tap_range(g.out_w, g.width, s, kx, pad);
            ox_lo = ox_lo.max(lo);
            ox_hi = ox_hi.min(hi);
        }
        let (mut oy_lo, mut oy_hi) = (0usize, g.out_h);
        for ky in 0..k {
            let (lo, hi) = tap_range(g.out_h, g.height, s, ky, pad);
            oy_lo = oy_lo.max(lo);
            oy_hi = oy_hi.min(hi);
        }
        let ox_hi = ox_hi.max(ox_lo);
        let oy_hi = oy_hi.max(oy_lo);
        let pad_i = pad as isize;
        for b in 0..g.batch {
            let go_unit = &go[(b * spec.out_channels + channel) * g.out_plane..][..g.out_plane];
            let in_base = (b * spec.in_channels + channel) * g.height * g.width;
            for oy in 0..g.out_h {
                let go_row = &go_unit[oy * g.out_w..(oy + 1) * g.out_w];
                // The slow (edge) column step: per-tap bounds with explicit
                // zero contributions, preserving the exact chain. A macro —
                // not a closure — so the accumulator block is indexed
                // directly and stays eligible for scalar replacement
                // (a `&mut` capture would pin it to the stack).
                macro_rules! edge_step {
                    ($ox:expr) => {{
                        let ox = $ox;
                        let gv = go_row[ox];
                        for ky in 0..k {
                            let in_y = (oy * s + ky) as isize - pad_i;
                            let row_ok = in_y >= 0 && in_y < g.height as isize;
                            let row_base = in_base + in_y.max(0) as usize * g.width;
                            for kx in 0..k {
                                let in_x = (ox * s + kx) as isize - pad_i;
                                let sv = if row_ok && in_x >= 0 && in_x < g.width as isize {
                                    src[row_base + in_x as usize]
                                } else {
                                    0.0
                                };
                                acc[ky * k + kx] = fused_mul_add(gv, sv, acc[ky * k + kx]);
                            }
                        }
                    }};
                }
                if oy >= oy_lo && oy < oy_hi {
                    for ox in 0..ox_lo {
                        edge_step!(ox);
                    }
                    // Interior: every tap in-image, no bounds checks. The
                    // `oy * s + ky >= pad` and `ox * s + kx >= pad` offsets
                    // are non-negative by construction of the ranges.
                    debug_assert!(oy * s >= pad);
                    for ox in ox_lo..ox_hi {
                        let gv = go_row[ox];
                        let col0 = ox * s - pad;
                        for ky in 0..k {
                            let row_base = in_base + (oy * s + ky - pad) * g.width + col0;
                            let taps = &src[row_base..row_base + k];
                            for (kx, &sv) in taps.iter().enumerate() {
                                acc[ky * k + kx] = fused_mul_add(gv, sv, acc[ky * k + kx]);
                            }
                        }
                    }
                    for ox in ox_hi..g.out_w {
                        edge_step!(ox);
                    }
                } else {
                    for ox in 0..g.out_w {
                        edge_step!(ox);
                    }
                }
            }
        }
        unit.copy_from_slice(&acc[..ckk]);
    }
}

/// Tap-outer fallback for kernels too large for the register-blocked
/// position-outer path: one serial chain per tap, same ascending order.
#[allow(clippy::too_many_arguments)]
fn dw_grad_weight_tap_outer(
    unit: &mut [f32],
    src: &[f32],
    go: &[f32],
    g: &ConvGeometry,
    spec: &Conv2dSpec,
    channel: usize,
    k: usize,
    _s: usize,
    _pad: usize,
) {
    use crate::kernels::fused_mul_add;
    let pad = spec.padding as isize;
    for (tap, slot) in unit.iter_mut().enumerate() {
        let (ky, kx) = (tap / k, tap % k);
        let mut acc = 0.0f32;
        for b in 0..g.batch {
            let go_unit = &go[(b * spec.out_channels + channel) * g.out_plane..][..g.out_plane];
            let in_base = (b * spec.in_channels + channel) * g.height * g.width;
            for oy in 0..g.out_h {
                let in_y = (oy * spec.stride + ky) as isize - pad;
                let go_row = &go_unit[oy * g.out_w..(oy + 1) * g.out_w];
                if in_y < 0 || in_y >= g.height as isize {
                    for &gv in go_row {
                        acc = fused_mul_add(gv, 0.0, acc);
                    }
                    continue;
                }
                let src_row = &src[in_base + in_y as usize * g.width..][..g.width];
                for (ox, &gv) in go_row.iter().enumerate() {
                    let in_x = (ox * spec.stride + kx) as isize - pad;
                    let sv = if in_x >= 0 && in_x < g.width as isize {
                        src_row[in_x as usize]
                    } else {
                        0.0
                    };
                    acc = fused_mul_add(gv, sv, acc);
                }
            }
        }
        *slot = acc;
    }
}

/// The weight-gradient half of the convolution backward pass, shared by
/// [`conv2d_backward_into`] and [`conv2d_backward_params_into`]: per group,
/// accumulate `grad_out_b x cols_bᵀ` over the batch via `beta = 1`. The
/// per-element chain is the ascending (batch, position) order — identical
/// to a batch-concatenated GEMM — while any scratch stays one batch item
/// wide.
#[allow(clippy::too_many_arguments)]
fn conv_grad_weight(
    src: &[f32],
    go: &[f32],
    spec: &Conv2dSpec,
    g: &ConvGeometry,
    pointwise: bool,
    cols: Option<&[f32]>,
    grad_weight: &mut [f32],
    macs: usize,
) {
    // The first batch item's beta == 0 GEMM fully overwrites the buffer, so
    // no zeroing is needed — except for an empty batch, where no GEMM runs
    // at all.
    if g.batch == 0 {
        grad_weight.fill(0.0);
    }
    let (group_threads, gemm_par) = split_threads(spec.groups, macs);
    for_each_unit(
        grad_weight,
        g.cout_g * g.ckk,
        group_threads,
        |group, unit| {
            if g.cin_g == 1 && g.cout_g == 1 && !pointwise {
                // Depthwise fast path: direct taps, no unfold, no per-batch
                // GEMM calls (see `depthwise_grad_weight_group`).
                depthwise_grad_weight_group(unit, src, go, g, spec, group);
                return;
            }
            if pointwise {
                // Feed the input slices directly — no unfold copy at all.
                for b in 0..g.batch {
                    let input_group = &src
                        [(b * spec.in_channels + group * g.cin_g) * g.out_plane..]
                        [..g.ckk * g.out_plane];
                    let go_group = &go[(b * spec.out_channels + group * g.cout_g) * g.out_plane..]
                        [..g.cout_g * g.out_plane];
                    let beta = if b == 0 { 0.0 } else { 1.0 };
                    sgemm_quiet(
                        false,
                        true,
                        g.cout_g,
                        g.ckk,
                        g.out_plane,
                        1.0,
                        go_group,
                        input_group,
                        beta,
                        unit,
                        gemm_par,
                    );
                }
                return;
            }
            if let Some(cached) = cols {
                // Forward-cached columns: the second unfold of the training
                // step disappears — each (batch, group) unit's matrix is
                // read straight from the cache.
                for b in 0..g.batch {
                    let unit_cols = &cached[(b * spec.groups + group) * g.ckk * g.out_plane..]
                        [..g.ckk * g.out_plane];
                    let go_group = &go[(b * spec.out_channels + group * g.cout_g) * g.out_plane..]
                        [..g.cout_g * g.out_plane];
                    let beta = if b == 0 { 0.0 } else { 1.0 };
                    sgemm_quiet(
                        false,
                        true,
                        g.cout_g,
                        g.ckk,
                        g.out_plane,
                        1.0,
                        go_group,
                        unit_cols,
                        beta,
                        unit,
                        gemm_par,
                    );
                }
                return;
            }
            with_cols_scratch(g.ckk * g.out_plane, |cols| {
                for b in 0..g.batch {
                    im2col_group(cols, src, g, spec, b, group * g.cin_g);
                    let go_group = &go[(b * spec.out_channels + group * g.cout_g) * g.out_plane..]
                        [..g.cout_g * g.out_plane];
                    let beta = if b == 0 { 0.0 } else { 1.0 };
                    sgemm_quiet(
                        false,
                        true,
                        g.cout_g,
                        g.ckk,
                        g.out_plane,
                        1.0,
                        go_group,
                        cols,
                        beta,
                        unit,
                        gemm_par,
                    );
                }
            });
        },
    );
}

/// The parameter-gradient half of [`conv2d_backward_into`] alone: weight and
/// bias gradients, with the input gradient skipped entirely.
///
/// This is the planned-path optimisation for a network's *first* layer,
/// whose input is data and needs no gradient — the `Wᵀ x grad_out` GEMMs and
/// the col2im fold simply never run. The weight/bias gradients are
/// bit-identical to the full backward pass; `cols` plays the same
/// forward-cache role as in [`conv2d_backward_into`].
///
/// # Errors
///
/// Returns an error if any shape disagrees with `spec` or a buffer has the
/// wrong length.
pub fn conv2d_backward_params_into(
    input: &Tensor,
    grad_output: &Tensor,
    spec: &Conv2dSpec,
    cols: Option<&[f32]>,
    grad_weight: &mut [f32],
    grad_bias: &mut [f32],
) -> Result<()> {
    let g = ConvGeometry::new(input, spec)?;
    let expected = [g.batch, spec.out_channels, g.out_h, g.out_w];
    if grad_output.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: expected.to_vec(),
        });
    }
    let weight_len: usize = spec.weight_dims().iter().product();
    for (buffer, expected_len) in [
        (&*grad_weight, weight_len),
        (&*grad_bias, spec.out_channels),
    ] {
        if buffer.len() != expected_len {
            return Err(TensorError::LengthMismatch {
                expected: expected_len,
                actual: buffer.len(),
            });
        }
    }
    if let Some(cached) = cols {
        let expected = conv2d_cols_len(input, spec)?;
        if cached.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: cached.len(),
            });
        }
    }
    let src = input.as_slice();
    let go = grad_output.as_slice();
    for (oc, slot) in grad_bias.iter_mut().enumerate() {
        *slot = 0.0;
        for b in 0..g.batch {
            let plane = &go[(b * spec.out_channels + oc) * g.out_plane..][..g.out_plane];
            for &value in plane {
                *slot += value;
            }
        }
    }
    let pointwise = spec.kernel == 1 && spec.stride == 1 && spec.padding == 0;
    let macs = g.batch * spec.out_channels * g.out_plane * g.ckk;
    obs::metrics::GEMM_CALLS.add((g.batch * spec.groups) as u64);
    obs::metrics::GEMM_FLOPS.add(2 * macs as u64);
    let _span = obs::span_dims(
        "conv2d_backward_params",
        obs::SpanKind::Kernel,
        [
            g.batch as u32,
            spec.out_channels as u32,
            spec.kernel as u32,
            g.out_plane as u32,
        ],
    );
    conv_grad_weight(src, go, spec, &g, pointwise, cols, grad_weight, macs);
    Ok(())
}

/// Unfolds `input` (`[batch, channels, h, w]`) into a matrix of sliding
/// windows with shape `[batch * out_h * out_w, channels * k * k]`.
///
/// The `spec` only uses `kernel`, `stride` and `padding`; channel counts are
/// taken from the input. This row-major layout is the classic lowering kept
/// for external use and tests; the convolution drivers above use an internal
/// channel-major variant that writes GEMM outputs straight into NCHW.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the window does not fit.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 4,
            actual: input.rank(),
        });
    }
    let [batch, channels, height, width] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let probe = Conv2dSpec {
        in_channels: channels,
        out_channels: channels,
        ..*spec
    };
    let (out_h, out_w) = probe.output_size(height, width)?;
    let k = spec.kernel;
    let cols_per_row = channels * k * k;
    obs::metrics::IM2COL_BYTES
        .add((batch * out_h * out_w * cols_per_row * std::mem::size_of::<f32>()) as u64);
    let _span = obs::span_dims(
        "im2col",
        obs::SpanKind::Kernel,
        [
            batch as u32,
            channels as u32,
            k as u32,
            (out_h * out_w) as u32,
        ],
    );
    let mut out = vec![0.0f32; batch * out_h * out_w * cols_per_row];
    let src = input.as_slice();
    let pad = spec.padding as isize;
    for b in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_base = ((b * out_h + oy) * out_w + ox) * cols_per_row;
                for c in 0..channels {
                    for ky in 0..k {
                        let in_y = (oy * spec.stride + ky) as isize - pad;
                        for kx in 0..k {
                            let in_x = (ox * spec.stride + kx) as isize - pad;
                            let col = (c * k + ky) * k + kx;
                            let value = if in_y >= 0
                                && in_y < height as isize
                                && in_x >= 0
                                && in_x < width as isize
                            {
                                src[((b * channels + c) * height + in_y as usize) * width
                                    + in_x as usize]
                            } else {
                                0.0
                            };
                            out[row_base + col] = value;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch * out_h * out_w, cols_per_row])
}

/// Folds an im2col matrix back into an image, accumulating overlapping
/// windows. This is the adjoint of [`im2col`].
///
/// # Errors
///
/// Returns an error if `cols` does not have the shape produced by [`im2col`]
/// for the given `image_dims` (`[batch, channels, h, w]`) and `spec`.
pub fn col2im(cols: &Tensor, image_dims: &[usize; 4], spec: &Conv2dSpec) -> Result<Tensor> {
    let [batch, channels, height, width] = *image_dims;
    let probe = Conv2dSpec {
        in_channels: channels,
        out_channels: channels,
        ..*spec
    };
    let (out_h, out_w) = probe.output_size(height, width)?;
    let k = spec.kernel;
    let cols_per_row = channels * k * k;
    let expected = [batch * out_h * out_w, cols_per_row];
    if cols.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.dims().to_vec(),
            rhs: expected.to_vec(),
        });
    }
    let mut out = vec![0.0f32; batch * channels * height * width];
    let src = cols.as_slice();
    let pad = spec.padding as isize;
    for b in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_base = ((b * out_h + oy) * out_w + ox) * cols_per_row;
                for c in 0..channels {
                    for ky in 0..k {
                        let in_y = (oy * spec.stride + ky) as isize - pad;
                        for kx in 0..k {
                            let in_x = (ox * spec.stride + kx) as isize - pad;
                            if in_y >= 0
                                && in_y < height as isize
                                && in_x >= 0
                                && in_x < width as isize
                            {
                                let col = (c * k + ky) * k + kx;
                                out[((b * channels + c) * height + in_y as usize) * width
                                    + in_x as usize] += src[row_base + col];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch, channels, height, width])
}

/// Convolution forward pass through im2col and matrix multiplication.
///
/// Since the grouped GEMM lowering became the one and only [`conv2d`]
/// implementation this is an alias for it, kept for API compatibility; the
/// historical `groups == 1` restriction is gone.
///
/// # Errors
///
/// Returns an error for shapes inconsistent with `spec`.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor> {
    conv2d(input, weight, bias, spec)
}

#[cfg(test)]
mod oracle {
    //! The seed's direct 7-deep convolution loop, kept only as the
    //! reference the GEMM formulation is property-tested against.

    use super::*;
    use crate::kernels::fused_mul_add;

    /// Direct-loop convolution forward, accumulating with the same
    /// [`fused_mul_add`] step as the production GEMM so the two paths are
    /// comparable at full precision within one build.
    pub(super) fn conv2d_direct(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Result<Tensor> {
        let (batch, height, width) = check_input(input, spec)?;
        check_weight(weight, spec)?;
        let (out_h, out_w) = spec.output_size(height, width)?;
        let groups = spec.groups;
        let cin_g = spec.in_channels / groups;
        let cout_g = spec.out_channels / groups;
        let k = spec.kernel;
        let mut out = vec![0.0f32; batch * spec.out_channels * out_h * out_w];
        let src = input.as_slice();
        let w = weight.as_slice();
        let pad = spec.padding as isize;
        for b in 0..batch {
            for g in 0..groups {
                for oc_local in 0..cout_g {
                    let oc = g * cout_g + oc_local;
                    let bias_val = bias.map_or(0.0, |t| t.as_slice()[oc]);
                    for oy in 0..out_h {
                        for ox in 0..out_w {
                            let mut acc = bias_val;
                            for ic_local in 0..cin_g {
                                let ic = g * cin_g + ic_local;
                                let w_base = ((oc * cin_g + ic_local) * k) * k;
                                let in_base = (b * spec.in_channels + ic) * height * width;
                                for ky in 0..k {
                                    let in_y = (oy * spec.stride + ky) as isize - pad;
                                    if in_y < 0 || in_y >= height as isize {
                                        continue;
                                    }
                                    let row_base = in_base + in_y as usize * width;
                                    let w_row = w_base + ky * k;
                                    for kx in 0..k {
                                        let in_x = (ox * spec.stride + kx) as isize - pad;
                                        if in_x < 0 || in_x >= width as isize {
                                            continue;
                                        }
                                        acc = fused_mul_add(
                                            src[row_base + in_x as usize],
                                            w[w_row + kx],
                                            acc,
                                        );
                                    }
                                }
                            }
                            out[((b * spec.out_channels + oc) * out_h + oy) * out_w + ox] = acc;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[batch, spec.out_channels, out_h, out_w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::sgemm;
    use crate::rng::StdRng;

    fn finite_difference_check(spec: Conv2dSpec, input_dims: [usize; 4], seed: u64) {
        let mut rng = StdRng::seed_from(seed);
        let input = Tensor::randn(&input_dims, 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[spec.out_channels], 0.0, 0.5, &mut rng);
        let out = conv2d(&input, &weight, Some(&bias), &spec).unwrap();
        // Scalar loss: sum of outputs weighted by a fixed random tensor.
        let weights = Tensor::randn(out.dims(), 0.0, 1.0, &mut rng);
        let grad_output = weights.clone();
        let (gi, gw, gb) = conv2d_backward(&input, &weight, &grad_output, &spec).unwrap();

        let loss = |inp: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d(inp, w, Some(b), &spec)
                .unwrap()
                .mul(&weights)
                .unwrap()
                .sum()
        };

        let eps = 1e-2;
        // Spot-check a handful of coordinates in each gradient tensor.
        for idx in [0usize, input.len() / 2, input.len() - 1] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num = (loss(&plus, &weight, &bias) - loss(&minus, &weight, &bias)) / (2.0 * eps);
            let ana = gi.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "grad_input[{idx}]: numerical {num} vs analytical {ana}"
            );
        }
        for idx in [0usize, weight.len() / 2, weight.len() - 1] {
            let mut plus = weight.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &plus, &bias) - loss(&input, &minus, &bias)) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "grad_weight[{idx}]: numerical {num} vs analytical {ana}"
            );
        }
        for idx in 0..spec.out_channels {
            let mut plus = bias.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = bias.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &weight, &plus) - loss(&input, &weight, &minus)) / (2.0 * eps);
            let ana = gb.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "grad_bias[{idx}]: numerical {num} vs analytical {ana}"
            );
        }
    }

    #[test]
    fn output_size_accounts_for_stride_and_padding() {
        let spec = Conv2dSpec::new(3, 8, 3).with_stride(2).with_padding(1);
        assert_eq!(spec.output_size(8, 8).unwrap(), (4, 4));
        let spec = Conv2dSpec::new(3, 8, 3);
        assert_eq!(spec.output_size(8, 8).unwrap(), (6, 6));
    }

    #[test]
    fn output_size_rejects_oversized_kernel() {
        let spec = Conv2dSpec::new(1, 1, 5);
        assert!(spec.output_size(3, 3).is_err());
    }

    #[test]
    fn spec_rejects_bad_groups() {
        let spec = Conv2dSpec::new(3, 8, 3).with_groups(2);
        assert!(spec.output_size(8, 8).is_err());
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1 is the identity for a single channel.
        let spec = Conv2dSpec::new(1, 1, 1);
        let mut rng = StdRng::seed_from(1);
        let input = Tensor::randn(&[2, 1, 5, 5], 0.0, 1.0, &mut rng);
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&input, &weight, None, &spec).unwrap();
        assert!(out.allclose(&input, 1e-6));
    }

    #[test]
    fn known_3x3_convolution() {
        let spec = Conv2dSpec::new(1, 1, 3);
        // 4x4 input of increasing values, 3x3 averaging-like kernel of ones.
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d(&input, &weight, None, &spec).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        // Top-left window: rows 0..3, cols 0..3 = 0+1+2+4+5+6+8+9+10 = 45.
        assert_eq!(out.at(&[0, 0, 0, 0]).unwrap(), 45.0);
        assert_eq!(out.at(&[0, 0, 1, 1]).unwrap(), 45.0 + 9.0 * 5.0);
    }

    #[test]
    fn bias_is_added_to_every_output_position() {
        let spec = Conv2dSpec::new(1, 2, 1);
        let input = Tensor::zeros(&[1, 1, 3, 3]);
        let weight = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), &spec).unwrap();
        assert_eq!(out.at(&[0, 0, 1, 1]).unwrap(), 1.5);
        assert_eq!(out.at(&[0, 1, 2, 2]).unwrap(), -2.0);
    }

    #[test]
    fn depthwise_convolution_keeps_channels_separate() {
        // groups == channels: each output channel only sees its own input channel.
        let spec = Conv2dSpec::new(2, 2, 1).with_groups(2);
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let weight = Tensor::from_vec(vec![2.0, 3.0], &[2, 1, 1, 1]).unwrap();
        let out = conv2d(&input, &weight, None, &spec).unwrap();
        assert_eq!(out.at(&[0, 0, 0, 0]).unwrap(), 2.0);
        assert_eq!(out.at(&[0, 1, 0, 0]).unwrap(), 30.0);
    }

    /// The satellite property test: the GEMM formulation equals the seed's
    /// direct loop on random dense, grouped and depthwise specifications.
    #[test]
    fn property_gemm_conv_matches_direct_oracle() {
        let mut rng = StdRng::seed_from(0xC0FFEE);
        let cases: &[(Conv2dSpec, [usize; 4])] = &[
            (Conv2dSpec::new(3, 5, 3).with_padding(1), [2, 3, 9, 9]),
            (
                Conv2dSpec::new(4, 6, 3).with_padding(1).with_stride(2),
                [1, 4, 8, 8],
            ),
            (
                Conv2dSpec::new(6, 6, 3).with_padding(1).with_groups(6),
                [2, 6, 7, 7],
            ),
            (
                Conv2dSpec::new(8, 4, 3).with_padding(2).with_groups(2),
                [3, 8, 6, 6],
            ),
            (Conv2dSpec::new(4, 8, 1), [2, 4, 5, 5]),
            (
                Conv2dSpec::new(2, 2, 5).with_padding(2).with_groups(2),
                [1, 2, 11, 11],
            ),
        ];
        for (case, (spec, dims)) in cases.iter().enumerate() {
            let input = Tensor::randn(dims, 0.0, 1.0, &mut rng);
            let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
            let bias = Tensor::randn(&[spec.out_channels], 0.0, 0.5, &mut rng);
            for use_bias in [true, false] {
                let bias_ref = use_bias.then_some(&bias);
                let expected = oracle::conv2d_direct(&input, &weight, bias_ref, spec).unwrap();
                for threads in [1usize, 2, 4] {
                    Parallelism::fixed(threads).make_current();
                    let got = conv2d(&input, &weight, bias_ref, spec).unwrap();
                    assert_eq!(
                        got, expected,
                        "case {case} (bias={use_bias}, threads={threads}) diverged from the \
                         direct-loop oracle"
                    );
                }
                Parallelism::auto().make_current();
            }
        }
    }

    /// Forward and backward results must not depend on the thread count.
    /// The shape carries several workers' worth of MACs (~9.4M forward) so
    /// the FLOP threshold in `parallel.rs` does not clamp the sweep to a
    /// single thread.
    #[test]
    fn conv_backward_is_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from(99);
        let spec = Conv2dSpec::new(16, 32, 3).with_padding(1).with_groups(2);
        let input = Tensor::randn(&[4, 16, 32, 32], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
        let grad_output = Tensor::randn(&[4, 32, 32, 32], 0.0, 1.0, &mut rng);
        Parallelism::single().make_current();
        let forward_reference = conv2d(&input, &weight, None, &spec).unwrap();
        let reference = conv2d_backward(&input, &weight, &grad_output, &spec).unwrap();
        for threads in [2usize, 4] {
            Parallelism::fixed(threads).make_current();
            assert_eq!(
                conv2d(&input, &weight, None, &spec).unwrap(),
                forward_reference,
                "forward diverged at {threads}"
            );
            let got = conv2d_backward(&input, &weight, &grad_output, &spec).unwrap();
            assert_eq!(got.0, reference.0, "grad_input diverged at {threads}");
            assert_eq!(got.1, reference.1, "grad_weight diverged at {threads}");
            assert_eq!(got.2, reference.2, "grad_bias diverged at {threads}");
        }
        Parallelism::auto().make_current();
    }

    #[test]
    fn im2col_matmul_matches_direct_convolution() {
        let spec = Conv2dSpec::new(3, 5, 3).with_padding(1).with_stride(2);
        let mut rng = StdRng::seed_from(3);
        let input = Tensor::randn(&[2, 3, 9, 9], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[5], 0.0, 0.5, &mut rng);
        let direct = oracle::conv2d_direct(&input, &weight, Some(&bias), &spec).unwrap();
        let via_cols = conv2d_im2col(&input, &weight, Some(&bias), &spec).unwrap();
        assert!(direct.allclose(&via_cols, 1e-4));
    }

    #[test]
    fn conv2d_im2col_now_accepts_groups() {
        let spec = Conv2dSpec::new(4, 4, 3).with_padding(1).with_groups(4);
        let mut rng = StdRng::seed_from(8);
        let input = Tensor::randn(&[1, 4, 6, 6], 0.0, 1.0, &mut rng);
        let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
        let grouped = conv2d_im2col(&input, &weight, None, &spec).unwrap();
        assert_eq!(grouped, conv2d(&input, &weight, None, &spec).unwrap());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for any x, y — the defining property
        // of the adjoint, which is what the backward pass relies on.
        let spec = Conv2dSpec::new(2, 2, 3).with_padding(1);
        let dims = [1usize, 2, 5, 5];
        let mut rng = StdRng::seed_from(4);
        let x = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 0.0, 1.0, &mut rng);
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im(&y, &dims, &spec).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    /// The depthwise backward fast paths (direct-tap grad_weight, fused
    /// rank-1 grad_input scatter) must equal the generic lowered
    /// formulation — grad-cols GEMM + col2im, per-batch GEMV over unfolded
    /// columns — exactly.
    #[test]
    fn depthwise_backward_matches_lowered_formulation_bitwise() {
        let mut rng = StdRng::seed_from(0xD11);
        for (stride, size) in [(1usize, 9usize), (2, 8)] {
            let spec = Conv2dSpec::new(6, 6, 3)
                .with_padding(1)
                .with_stride(stride)
                .with_groups(6);
            let dims = [3usize, 6, size, size];
            let input = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
            let weight = Tensor::randn(&spec.weight_dims(), 0.0, 0.5, &mut rng);
            let g = ConvGeometry::new(&input, &spec).unwrap();
            let grad_output = Tensor::randn(
                &[g.batch, spec.out_channels, g.out_h, g.out_w],
                0.0,
                1.0,
                &mut rng,
            );
            Parallelism::single().make_current();
            let (gi, gw, gb) = conv2d_backward(&input, &weight, &grad_output, &spec).unwrap();

            // The lowered reference: exactly the pre-fast-path algorithm.
            let src = input.as_slice();
            let w = weight.as_slice();
            let go = grad_output.as_slice();
            let mut expected_gi = vec![0.0f32; src.len()];
            let unit_len = g.cin_g * g.height * g.width;
            for (unit_index, unit) in expected_gi.chunks_mut(unit_len).enumerate() {
                let (b, group) = (unit_index / spec.groups, unit_index % spec.groups);
                let w_group = &w[group * g.cout_g * g.ckk..][..g.cout_g * g.ckk];
                let go_group = &go[(b * spec.out_channels + group * g.cout_g) * g.out_plane..]
                    [..g.cout_g * g.out_plane];
                let mut grad_cols = vec![0.0f32; g.ckk * g.out_plane];
                sgemm(
                    true,
                    false,
                    g.ckk,
                    g.out_plane,
                    g.cout_g,
                    1.0,
                    w_group,
                    go_group,
                    0.0,
                    &mut grad_cols,
                    Parallelism::single(),
                );
                col2im_group(&grad_cols, unit, &g, &spec);
            }
            let mut expected_gw = vec![0.0f32; w.len()];
            for (group, unit) in expected_gw.chunks_mut(g.cout_g * g.ckk).enumerate() {
                let mut cols = vec![0.0f32; g.ckk * g.out_plane];
                for b in 0..g.batch {
                    im2col_group(&mut cols, src, &g, &spec, b, group * g.cin_g);
                    let go_group = &go[(b * spec.out_channels + group * g.cout_g) * g.out_plane..]
                        [..g.cout_g * g.out_plane];
                    let beta = if b == 0 { 0.0 } else { 1.0 };
                    sgemm(
                        false,
                        true,
                        g.cout_g,
                        g.ckk,
                        g.out_plane,
                        1.0,
                        go_group,
                        &cols,
                        beta,
                        unit,
                        Parallelism::single(),
                    );
                }
            }
            assert_eq!(
                gi.as_slice(),
                expected_gi.as_slice(),
                "grad_input diverged (stride {stride})"
            );
            assert_eq!(
                gw.as_slice(),
                expected_gw.as_slice(),
                "grad_weight diverged (stride {stride})"
            );
            assert_eq!(gb.len(), 6);
            Parallelism::auto().make_current();
        }
    }

    #[test]
    fn backward_matches_finite_differences_dense() {
        finite_difference_check(Conv2dSpec::new(2, 3, 3).with_padding(1), [1, 2, 5, 5], 10);
    }

    #[test]
    fn backward_matches_finite_differences_strided() {
        finite_difference_check(
            Conv2dSpec::new(3, 4, 3).with_padding(1).with_stride(2),
            [2, 3, 6, 6],
            11,
        );
    }

    #[test]
    fn backward_matches_finite_differences_depthwise() {
        finite_difference_check(
            Conv2dSpec::new(4, 4, 3).with_padding(1).with_groups(4),
            [1, 4, 5, 5],
            12,
        );
    }

    #[test]
    fn backward_rejects_wrong_grad_output_shape() {
        let spec = Conv2dSpec::new(1, 1, 3);
        let input = Tensor::zeros(&[1, 1, 5, 5]);
        let weight = Tensor::zeros(&[1, 1, 3, 3]);
        let wrong = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(conv2d_backward(&input, &weight, &wrong, &spec).is_err());
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let spec = Conv2dSpec::new(3, 4, 3);
        let input = Tensor::zeros(&[1, 2, 5, 5]);
        let weight = Tensor::zeros(&spec.weight_dims());
        assert!(conv2d(&input, &weight, None, &spec).is_err());
    }
}
