//! The ISA-generic vector abstraction and the generic kernel bodies built
//! on it.
//!
//! [`SimdF32`] exposes the minimal lane-wise operation set the kernels
//! need: splat/load/store, fused multiply-add, add/sub/mul/div, min/max and
//! a strided gather. Every operation maps one lane to exactly one scalar
//! IEEE-754 operation with identical rounding, so a vectorised loop is
//! bit-identical to the scalar loop it replaces as long as it evaluates the
//! same expressions in the same per-element order — the rule every kernel
//! body in this module follows. The two deliberate exceptions stay scalar
//! even on the SIMD paths: the logistic sigmoid (libm `exp`, which has no
//! exact vector form) and the backward gradient mask (whose derivatives
//! branch per element).
//!
//! The generic bodies ([`tile_kernel`], [`gemv_kernel`], [`sub_kernel`])
//! are `#[inline(always)]` and only ever instantiated inside
//! `#[target_feature]` wrappers in the `x86` module, so the trait methods
//! compile down to single instructions with the wrapper's feature set.

use crate::kernels::{fma_step, scale_c, BiasAxis, Epilogue, EpilogueActivation, TilePass};

/// Widest micro-tile row any dispatch path writes (AVX-512: 2 × 16 lanes);
/// sizes the stack spill buffer used by the scalar-sigmoid write-back.
const MAX_NR: usize = 32;

/// Largest micro-tile any dispatch path computes (AVX-512: 14 × 32); sizes
/// the zero-padded stack tile used for partial edge tiles. (Const-generic
/// arithmetic cannot size arrays on stable Rust, so every path shares the
/// maximal buffer — 1.75 KiB of stack.)
const MAX_TILE: usize = 14 * MAX_NR;

/// One SIMD vector of `f32` lanes.
///
/// # Safety
///
/// Every method may only execute on a CPU with the implementing type's
/// instruction set; the dispatch tables guarantee this by construction
/// (they are selected only after `is_x86_feature_detected!` succeeds).
pub(crate) trait SimdF32: Copy {
    /// Lane count.
    const LANES: usize;
    /// Precomputed gather index vector (lane `l` reads offset `l * stride`).
    type Index: Copy;

    /// All-zero lanes.
    unsafe fn zero() -> Self;
    /// Broadcasts one value to every lane.
    unsafe fn splat(x: f32) -> Self;
    /// Unaligned load of `LANES` consecutive values.
    unsafe fn load(ptr: *const f32) -> Self;
    /// Unaligned store of `LANES` consecutive values.
    unsafe fn store(self, ptr: *mut f32);
    /// Lane-wise `self * b + acc` with a single rounding.
    unsafe fn fma(self, b: Self, acc: Self) -> Self;
    /// Lane-wise addition.
    unsafe fn add(self, b: Self) -> Self;
    /// Lane-wise subtraction.
    unsafe fn sub(self, b: Self) -> Self;
    /// Lane-wise multiplication.
    unsafe fn mul(self, b: Self) -> Self;
    /// Lane-wise division.
    unsafe fn div(self, b: Self) -> Self;
    /// Lane-wise maximum.
    unsafe fn max(self, b: Self) -> Self;
    /// Lane-wise minimum.
    unsafe fn min(self, b: Self) -> Self;
    /// Builds the index vector for [`SimdF32::gather`] with element stride
    /// `stride`.
    unsafe fn index_stride(stride: usize) -> Self::Index;
    /// Gathers lane `l` from `base[l * stride]`.
    unsafe fn gather(base: *const f32, index: Self::Index) -> Self;
}

/// The generic register-tiled micro-kernel: an `RT x (CT * LANES)` tile
/// accumulated over a whole `kc` slice, with the same accumulation chain,
/// spill/reload behaviour and fused write-back as the scalar
/// `micro_kernel` in `kernels.rs`. Partial edge tiles run [`padded_tile`],
/// the same full-width vector kernel against a zero-padded stack tile.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) unsafe fn tile_kernel<V: SimdF32, const RT: usize, const CT: usize>(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    let nr = CT * V::LANES;
    debug_assert!(nr <= MAX_NR);
    debug_assert!(panel_a.len() >= kc * RT);
    debug_assert!(panel_b.len() >= kc * nr);
    if height < RT || width < nr {
        padded_tile::<V, RT, CT>(
            panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
        );
        return;
    }
    debug_assert!(c.len() >= c_offset + (RT - 1) * ldc + nr);
    // Accumulator init: beta * C on the first K block (beta == 0 never
    // reads C), reload of the spilled partials afterwards — the same chain
    // heads as the scalar kernel, multiplication lane-exact.
    let mut acc = [[V::zero(); CT]; RT];
    if pass.first_k_block {
        if pass.beta != 0.0 {
            let beta = V::splat(pass.beta);
            for (i, row) in acc.iter_mut().enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = beta.mul(V::load(c.as_ptr().add(c_offset + i * ldc + j * V::LANES)));
                }
            }
        }
    } else {
        for (i, row) in acc.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = V::load(c.as_ptr().add(c_offset + i * ldc + j * V::LANES));
            }
        }
    }
    let pa = panel_a.as_ptr();
    let pb = panel_b.as_ptr();
    for p in 0..kc {
        let mut b_vecs = [V::zero(); CT];
        for (j, slot) in b_vecs.iter_mut().enumerate() {
            *slot = V::load(pb.add(p * nr + j * V::LANES));
        }
        for (i, row) in acc.iter_mut().enumerate() {
            let a_value = V::splat(*pa.add(p * RT + i));
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = a_value.fma(b_vecs[j], *slot);
            }
        }
    }
    // Fused write-back, firing only on the final K block (the drivers
    // populate `pass.norm/activation/mask` only there). The gradient mask
    // and the sigmoid evaluate their scalar expressions per element — the
    // tile spills to a stack buffer first — every other transform maps
    // lane-exact onto vector ops in the scalar evaluation order.
    if let Some(mask) = pass.mask {
        let mut buf = [0.0f32; MAX_NR];
        for (i, row) in acc.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                value.store(buf.as_mut_ptr().add(j * V::LANES));
            }
            let base = c_offset + i * ldc;
            for (j, &x) in buf.iter().enumerate().take(nr) {
                c[base + j] = x * mask.grad.derivative(mask.input[base + j]);
            }
        }
        return;
    }
    match (pass.norm, pass.activation) {
        (None, None) => {
            for (i, row) in acc.iter().enumerate() {
                for (j, &value) in row.iter().enumerate() {
                    value.store(c.as_mut_ptr().add(c_offset + i * ldc + j * V::LANES));
                }
            }
        }
        (None, Some(EpilogueActivation::Sigmoid)) => {
            let mut buf = [0.0f32; MAX_NR];
            for (i, row) in acc.iter().enumerate() {
                for (j, &value) in row.iter().enumerate() {
                    value.store(buf.as_mut_ptr().add(j * V::LANES));
                }
                let base = c_offset + i * ldc;
                for (j, &x) in buf.iter().enumerate().take(nr) {
                    c[base + j] = EpilogueActivation::Sigmoid.apply(x);
                }
            }
        }
        (None, Some(act)) => {
            for (i, row) in acc.iter().enumerate() {
                for (j, &value) in row.iter().enumerate() {
                    act_vec::<V>(value, act)
                        .store(c.as_mut_ptr().add(c_offset + i * ldc + j * V::LANES));
                }
            }
        }
        (Some(nm), act) => {
            let mut buf = [0.0f32; MAX_NR];
            for (i, row) in acc.iter().enumerate() {
                // Hoist the row's channel constants like the scalar kernel;
                // the vector transform mirrors `NormParams::transform`'s
                // operation order exactly: sub, mul, mul, add.
                let params = nm.params(abs_row + i);
                let gamma = V::splat(params.gamma);
                let mean = V::splat(params.mean);
                let inv = V::splat(params.inv);
                let shift = V::splat(params.beta);
                for (j, &value) in row.iter().enumerate() {
                    let normed = gamma.mul(value.sub(mean)).mul(inv).add(shift);
                    let dst = c.as_mut_ptr().add(c_offset + i * ldc + j * V::LANES);
                    match act {
                        None => normed.store(dst),
                        Some(EpilogueActivation::Sigmoid) => {
                            normed.store(buf.as_mut_ptr().add(j * V::LANES))
                        }
                        Some(act) => act_vec::<V>(normed, act).store(dst),
                    }
                }
                if act == Some(EpilogueActivation::Sigmoid) {
                    let base = c_offset + i * ldc;
                    for (j, &x) in buf.iter().enumerate().take(nr) {
                        c[base + j] = EpilogueActivation::Sigmoid.apply(x);
                    }
                }
            }
        }
    }
}

/// The vector form of [`EpilogueActivation::apply`] for the activations
/// whose scalar expressions map lane-exact onto vector ops (everything but
/// the sigmoid, which the callers special-case to a scalar loop):
///
/// * ReLU: `max(x, 0)`,
/// * hard sigmoid: `min(max((x + 3) / 6, 0), 1)` — the exact `clamp`
///   sequence for the finite values a GEMM accumulator produces,
/// * hard swish: `x * hard_sigmoid(x)`.
#[inline(always)]
unsafe fn act_vec<V: SimdF32>(x: V, act: EpilogueActivation) -> V {
    match act {
        EpilogueActivation::Relu => x.max(V::splat(0.0)),
        EpilogueActivation::HardSigmoid => hard_sigmoid_vec(x),
        EpilogueActivation::HardSwish => x.mul(hard_sigmoid_vec(x)),
        EpilogueActivation::Sigmoid => unreachable!("sigmoid write-back stays scalar"),
    }
}

/// `clamp((x + 3) / 6, 0, 1)` lane-wise, mirroring the scalar helper.
#[inline(always)]
unsafe fn hard_sigmoid_vec<V: SimdF32>(x: V) -> V {
    x.add(V::splat(3.0))
        .div(V::splat(6.0))
        .max(V::splat(0.0))
        .min(V::splat(1.0))
}

/// Partial edge tiles (`height < RT` or `width < nr`): runs the *same*
/// full-size vector accumulation as the interior path against a zero-padded
/// stack tile, then writes the valid `height x width` region back with the
/// scalar epilogue expressions.
///
/// Bit-exactness: the valid region's chain heads are seeded exactly as the
/// interior path seeds them (`beta * C`, reload, or zero), the `kc` loop
/// executes the identical lane-wise FMA chain, and the packed panels are
/// zero-filled past `height`/`width` (see `pack_a`/`pack_b`), so padding
/// lanes only ever accumulate zeros and the valid lanes never see them. The
/// scalar epilogue expressions are lane-exact equal to their vector forms
/// by construction. Keeping edge tiles on the vector kernel (at the cost of
/// computing the padding lanes) is what stops short-`m` GEMMs — grouped
/// convolutions especially — from collapsing onto a per-element loop.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn padded_tile<V: SimdF32, const RT: usize, const CT: usize>(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    let nr = CT * V::LANES;
    debug_assert!(RT * nr <= MAX_TILE);
    let mut tile = [0.0f32; MAX_TILE];
    // Seed the valid region's chain heads; the padding stays zero. Partial
    // sums spilled between K blocks live in `c` for the valid region only,
    // so padding lanes restart from zero each block — they are never read.
    if pass.first_k_block {
        if pass.beta != 0.0 {
            for i in 0..height {
                for j in 0..width {
                    tile[i * nr + j] = pass.beta * c[c_offset + i * ldc + j];
                }
            }
        }
    } else {
        for i in 0..height {
            for j in 0..width {
                tile[i * nr + j] = c[c_offset + i * ldc + j];
            }
        }
    }
    let mut acc = [[V::zero(); CT]; RT];
    for (i, row) in acc.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = V::load(tile.as_ptr().add(i * nr + j * V::LANES));
        }
    }
    let pa = panel_a.as_ptr();
    let pb = panel_b.as_ptr();
    for p in 0..kc {
        let mut b_vecs = [V::zero(); CT];
        for (j, slot) in b_vecs.iter_mut().enumerate() {
            *slot = V::load(pb.add(p * nr + j * V::LANES));
        }
        for (i, row) in acc.iter_mut().enumerate() {
            let a_value = V::splat(*pa.add(p * RT + i));
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = a_value.fma(b_vecs[j], *slot);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        for (j, &value) in row.iter().enumerate() {
            value.store(tile.as_mut_ptr().add(i * nr + j * V::LANES));
        }
    }
    // Scalar write-back of the valid region with the fused transforms —
    // lane-exact equal to the vector write-back the interior path uses.
    for i in 0..height {
        let norm = pass.norm.map(|nm| nm.params(abs_row + i));
        for j in 0..width {
            let index = c_offset + i * ldc + j;
            let mut acc = tile[i * nr + j];
            if let Some(mask) = pass.mask {
                acc *= mask.grad.derivative(mask.input[index]);
            } else {
                if let Some(params) = norm {
                    acc = params.transform(acc);
                }
                if let Some(act) = pass.activation {
                    acc = act.apply(acc);
                }
            }
            c[index] = acc;
        }
    }
}

/// The generic `m == 1` GEMV: identical per-element chains to the scalar
/// `gemv_row` (chain head from bias or `beta * C`, ascending-`k`
/// accumulation, fused transforms once at the end), with the lane loops
/// vectorised. `trans_b == false` sweeps contiguous rows of `B` (vector
/// axpy); `trans_b == true` gives each lane one output's contiguous
/// dot-product row via a strided gather.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) unsafe fn gemv_kernel<V: SimdF32>(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    match epilogue.bias() {
        Some(bias) => match bias.axis {
            BiasAxis::Row => c.fill(bias.values[0]),
            BiasAxis::Col => c.copy_from_slice(bias.values),
        },
        None => scale_c(c, beta),
    }
    if trans_b {
        // Stored B is n x k: output j accumulates b[j * k + p] over p; lane
        // l of a vector block owns output j + l, gathering with stride k.
        let index = V::index_stride(k);
        let mut j = 0;
        while j + V::LANES <= n {
            let mut acc = V::load(c.as_ptr().add(j));
            let base = b.as_ptr().add(j * k);
            for (p, &ap) in a.iter().enumerate() {
                let av = V::splat(alpha * ap);
                acc = av.fma(V::gather(base.add(p), index), acc);
            }
            acc.store(c.as_mut_ptr().add(j));
            j += V::LANES;
        }
        for (offset, slot) in c[j..].iter_mut().enumerate() {
            let row = &b[(j + offset) * k..][..k];
            let mut acc = *slot;
            for (p, &ap) in a.iter().enumerate() {
                acc = fma_step::<true>(alpha * ap, row[p], acc);
            }
            *slot = acc;
        }
    } else {
        // Stored B is k x n: one vector axpy over the outputs per p, each
        // element's chain still ascending in p.
        for (p, &ap) in a.iter().enumerate() {
            let av = alpha * ap;
            let row = &b[p * n..][..n];
            let avv = V::splat(av);
            let mut j = 0;
            while j + V::LANES <= n {
                let acc = avv.fma(V::load(row.as_ptr().add(j)), V::load(c.as_ptr().add(j)));
                acc.store(c.as_mut_ptr().add(j));
                j += V::LANES;
            }
            for (slot, &bv) in c[j..].iter_mut().zip(&row[j..]) {
                *slot = fma_step::<true>(av, bv, *slot);
            }
        }
    }
    if let Some(mask) = epilogue.mask() {
        for (slot, &x) in c.iter_mut().zip(mask.input) {
            *slot *= mask.grad.derivative(x);
        }
        return;
    }
    // Fused transforms; the single row is channel 0 for a norm. Applying
    // the norm sweep and then the activation sweep composes to the same
    // per-element value chain as the scalar one-pass loop.
    let norm = epilogue.norm().map(|nm| nm.params(0));
    if let Some(params) = norm {
        let gamma = V::splat(params.gamma);
        let mean = V::splat(params.mean);
        let inv = V::splat(params.inv);
        let shift = V::splat(params.beta);
        let mut j = 0;
        while j + V::LANES <= n {
            let x = V::load(c.as_ptr().add(j));
            gamma
                .mul(x.sub(mean))
                .mul(inv)
                .add(shift)
                .store(c.as_mut_ptr().add(j));
            j += V::LANES;
        }
        for x in c[j..].iter_mut() {
            *x = params.transform(*x);
        }
    }
    if let Some(act) = epilogue.activation() {
        activation_slice::<V>(c, act);
    }
}

/// Applies one activation over a whole slice: vector blocks plus a scalar
/// tail for the exactly-mappable activations, a pure scalar loop for the
/// sigmoid.
#[inline(always)]
pub(crate) unsafe fn activation_slice<V: SimdF32>(xs: &mut [f32], act: EpilogueActivation) {
    if act == EpilogueActivation::Sigmoid {
        for x in xs.iter_mut() {
            *x = act.apply(*x);
        }
        return;
    }
    let n = xs.len();
    let mut j = 0;
    while j + V::LANES <= n {
        let ptr = xs.as_mut_ptr().add(j);
        act_vec::<V>(V::load(ptr), act).store(ptr);
        j += V::LANES;
    }
    for x in xs[j..].iter_mut() {
        *x = act.apply(*x);
    }
}

/// Subtracts `s` from every element — vector blocks plus scalar tail, exact
/// per element (the log-softmax shift passes).
#[inline(always)]
pub(crate) unsafe fn sub_kernel<V: SimdF32>(xs: &mut [f32], s: f32) {
    let sv = V::splat(s);
    let n = xs.len();
    let mut j = 0;
    while j + V::LANES <= n {
        let ptr = xs.as_mut_ptr().add(j);
        V::load(ptr).sub(sv).store(ptr);
        j += V::LANES;
    }
    for x in xs[j..].iter_mut() {
        *x -= s;
    }
}
