//! Runtime ISA dispatch for the compute kernels.
//!
//! Every hot kernel in this crate — the blocked GEMM micro-kernel, the
//! `m == 1` GEMV serving path, and the vectorised epilogue/softmax sweeps —
//! is reached through a [`Kernels`] dispatch table resolved **once per
//! process** from what the CPU reports at runtime (after the
//! `rten-simd` dispatch pattern):
//!
//! * **AVX-512** (`avx512f` + `avx2` + `fma`): a 14-row × 2 × 16-lane
//!   register tile,
//! * **AVX2 + FMA**: a 6-row × 2 × 8-lane register tile,
//! * **scalar**: the portable 4 × 24 tile in `kernels.rs`, autovectorised
//!   by LLVM (compiled against hardware FMA when the CPU has it, so its
//!   bits match the explicit-SIMD paths).
//!
//! Because every path accumulates each output element along the same
//! ascending-`k` chain and uses a correctly-rounded fused multiply-add
//! exactly when the CPU has one (see [`crate::fused_mul_add`]), **all
//! dispatch paths produce bit-identical results on a given machine** —
//! the cross-path property tests in `kernels.rs` enforce this to 0 ULP.
//!
//! The resolved default can be pinned with the `MTLSPLIT_FORCE_ISA`
//! environment variable (`scalar`, `avx2` or `avx512`); unknown values are
//! rejected with [`TensorError::UnknownIsa`] and paths the CPU lacks with
//! [`TensorError::UnsupportedIsa`] (surfaced by [`resolve_isa`], or as a
//! panic at first kernel use if never pre-flighted). Tests and benches pin
//! a path for one closure with [`Isa::with`].

use crate::error::{Result, TensorError};
use crate::kernels::{Epilogue, TilePass};
use std::cell::Cell;
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod vec;
#[cfg(target_arch = "x86_64")]
mod x86;

/// One GEMM micro-kernel: `(panel_a, panel_b, kc, c, c_offset, ldc, height,
/// width, abs_row, pass)` with the exact semantics of the scalar
/// `micro_kernel` in `kernels.rs`.
pub(crate) type MicroFn =
    fn(&[f32], &[f32], usize, &mut [f32], usize, usize, usize, usize, usize, TilePass<'_>);

/// One `m == 1` GEMV kernel: `(trans_b, n, k, alpha, a, b, beta, c,
/// epilogue)` with the exact semantics of `gemv_row` in `kernels.rs`.
pub(crate) type GemvFn = fn(bool, usize, usize, f32, &[f32], &[f32], f32, &mut [f32], Epilogue<'_>);

/// Subtracts a scalar from every slice element (the log-softmax shift
/// passes). Subtraction is correctly rounded lane-wise, so every
/// implementation is bit-identical.
pub(crate) type SubFn = fn(&mut [f32], f32);

/// The per-ISA kernel set plus the blocking and threading parameters tuned
/// for it. Resolved once (see [`kernels`]) and threaded down through the
/// GEMM/conv drivers so spawned workers use the caller's path.
pub(crate) struct Kernels {
    /// Which dispatch path this table implements.
    pub(crate) isa: Isa,
    /// Micro-tile height (rows of packed `A` per panel).
    pub(crate) mr: usize,
    /// Micro-tile width (columns of packed `B` per panel).
    pub(crate) nr: usize,
    /// Row-block size (`mr`-aligned) for packed `A`.
    pub(crate) mc: usize,
    /// Minimum multiply-accumulates per worker thread before the drivers
    /// spread work over scoped threads — higher for wider tiles, whose
    /// higher throughput makes thread spawn overhead relatively costlier.
    pub(crate) min_macs_per_thread: usize,
    /// The register-tiled GEMM micro-kernel.
    pub(crate) micro: MicroFn,
    /// The `m == 1` GEMV fast path.
    pub(crate) gemv: GemvFn,
    /// Vectorised scalar-subtract for the softmax shift passes.
    pub(crate) sub: SubFn,
}

/// Thread floor for the scalar (autovectorised 4×24) path.
pub(crate) const SCALAR_MIN_MACS: usize = 16 * 1024 * 1024;
/// Thread floor for the AVX2 path.
pub(crate) const AVX2_MIN_MACS: usize = 24 * 1024 * 1024;
/// Thread floor for the AVX-512 path.
pub(crate) const AVX512_MIN_MACS: usize = 32 * 1024 * 1024;

/// The portable dispatch table: the existing 4 × 24 scalar tile compiled
/// without explicit SIMD. Used directly when the build already targets
/// hardware FMA (then `f32::mul_add` lowers to `vfmadd` natively) or when
/// the CPU has no FMA at all; on FMA hardware under a portable build the
/// `x86` module swaps in a re-instantiation of the same code compiled with
/// the `fma` (and `avx2` where present) target features so LLVM
/// autovectorises it exactly like a `target-cpu=native` build.
static SCALAR_PLAIN: Kernels = Kernels {
    isa: Isa::Scalar,
    mr: crate::kernels::MR,
    nr: crate::kernels::NR,
    mc: crate::kernels::MC,
    min_macs_per_thread: SCALAR_MIN_MACS,
    micro: crate::kernels::micro_kernel,
    gemv: crate::kernels::gemv_row,
    sub: sub_scalar,
};

/// Plain scalar-subtract; exact per element, autovectorises at the SSE2
/// baseline.
pub(crate) fn sub_scalar(xs: &mut [f32], s: f32) {
    for x in xs.iter_mut() {
        *x -= s;
    }
}

/// A runtime-selectable instruction-set path for the compute kernels.
///
/// The crate resolves the best supported path once per process (override
/// with `MTLSPLIT_FORCE_ISA=scalar|avx2|avx512`); [`Isa::with`] pins a path
/// for the duration of one closure on the calling thread, which is how the
/// per-ISA property tests and benches drive every path in one process.
///
/// All paths are bit-identical on a given machine — see the crate docs for
/// the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// The portable 4 × 24 tile, no explicit SIMD (LLVM autovectorised).
    Scalar,
    /// AVX2 + FMA: 6-row × 2 × 8-lane register tile.
    Avx2,
    /// AVX-512F: 14-row × 2 × 16-lane register tile.
    Avx512,
}

impl Isa {
    /// The canonical lower-case name (`scalar`, `avx2`, `avx512`) — the
    /// accepted `MTLSPLIT_FORCE_ISA` values.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// Whether the running CPU can execute this path. [`Isa::Scalar`] is
    /// always supported; the SIMD paths additionally require hardware FMA
    /// so the accumulation chains stay bit-identical across paths.
    pub fn is_supported(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            match self {
                Isa::Scalar => true,
                Isa::Avx2 => {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                Isa::Avx512 => {
                    std::arch::is_x86_feature_detected!("avx512f")
                        && std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            matches!(self, Isa::Scalar)
        }
    }

    /// Every path the running CPU supports, scalar first.
    pub fn available() -> Vec<Isa> {
        [Isa::Scalar, Isa::Avx2, Isa::Avx512]
            .into_iter()
            .filter(|isa| isa.is_supported())
            .collect()
    }

    /// The widest supported path — what the process resolves to when
    /// `MTLSPLIT_FORCE_ISA` is unset.
    pub fn detect_best() -> Isa {
        if Isa::Avx512.is_supported() {
            Isa::Avx512
        } else if Isa::Avx2.is_supported() {
            Isa::Avx2
        } else {
            Isa::Scalar
        }
    }

    /// Runs `f` with this path pinned as the calling thread's dispatch
    /// target, restoring the previous setting afterwards (also on panic).
    /// Kernel calls made by `f` — including work they fan out to scoped
    /// worker threads — use this path.
    ///
    /// # Errors
    ///
    /// [`TensorError::UnsupportedIsa`] if the CPU cannot execute the path.
    pub fn with<R>(self, f: impl FnOnce() -> R) -> Result<R> {
        if !self.is_supported() {
            return Err(TensorError::UnsupportedIsa { isa: self.name() });
        }
        Ok(with_kernels(table(self), f))
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Isa {
    type Err = TensorError;

    /// Parses a `MTLSPLIT_FORCE_ISA` value; unknown strings produce
    /// [`TensorError::UnknownIsa`].
    fn from_str(s: &str) -> Result<Isa> {
        match s {
            "scalar" => Ok(Isa::Scalar),
            "avx2" => Ok(Isa::Avx2),
            "avx512" => Ok(Isa::Avx512),
            other => Err(TensorError::UnknownIsa {
                value: other.to_string(),
            }),
        }
    }
}

/// Selects the dispatch table for one supported path.
fn table(isa: Isa) -> &'static Kernels {
    match isa {
        Isa::Scalar => scalar_table(),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => &x86::AVX2,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => &x86::AVX512,
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar_table(),
    }
}

/// The scalar table variant whose accumulation bits match the SIMD paths on
/// this machine — see [`SCALAR_PLAIN`].
fn scalar_table() -> &'static Kernels {
    if crate::kernels::FUSED_MULTIPLY_ADD {
        return &SCALAR_PLAIN;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if Isa::Avx2.is_supported() {
            return &x86::SCALAR_AVX2_FMA;
        }
        if std::arch::is_x86_feature_detected!("fma") {
            return &x86::SCALAR_FMA;
        }
    }
    &SCALAR_PLAIN
}

/// Whether accumulation on this machine uses a correctly-rounded hardware
/// fused multiply-add — the runtime complement of
/// [`crate::FUSED_MULTIPLY_ADD`]. Every kernel path agrees with this
/// answer, which is what keeps the dispatch paths bit-identical.
pub fn fma_available() -> bool {
    if crate::kernels::FUSED_MULTIPLY_ADD {
        return true;
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One scalar correctly-rounded fused multiply-add through the hardware
/// unit, callable from builds that did not enable the `fma` target feature.
/// Only invoked after [`fma_available`] returned true.
#[inline]
pub(crate) fn fma_single(a: f32, b: f32, acc: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: gated on runtime FMA detection by the caller
        // (`fused_mul_add` checks `fma_available` first).
        unsafe { x86::fma_scalar(a, b, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        a.mul_add(b, acc)
    }
}

/// The process-default dispatch table, or the typed error explaining why
/// the `MTLSPLIT_FORCE_ISA` override could not be honoured.
fn default_kernels() -> std::result::Result<&'static Kernels, TensorError> {
    static DEFAULT: OnceLock<std::result::Result<&'static Kernels, TensorError>> = OnceLock::new();
    DEFAULT
        .get_or_init(|| {
            let isa = match std::env::var_os("MTLSPLIT_FORCE_ISA") {
                None => Isa::detect_best(),
                Some(raw) => {
                    let value = raw.to_str().ok_or_else(|| TensorError::UnknownIsa {
                        value: raw.to_string_lossy().into_owned(),
                    })?;
                    let isa: Isa = value.parse()?;
                    if !isa.is_supported() {
                        return Err(TensorError::UnsupportedIsa { isa: isa.name() });
                    }
                    isa
                }
            };
            Ok(table(isa))
        })
        .clone()
}

thread_local! {
    /// A thread-scoped dispatch override installed by [`Isa::with`] (and by
    /// the parallel drivers, so scoped workers inherit the caller's path).
    static OVERRIDE: Cell<Option<&'static Kernels>> = const { Cell::new(None) };
}

/// Runs `f` with `kt` installed as the calling thread's dispatch table,
/// restoring the previous override afterwards (also on unwind).
pub(crate) fn with_kernels<R>(kt: &'static Kernels, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<&'static Kernels>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|cell| cell.replace(Some(kt))));
    f()
}

/// The dispatch table kernel entry points resolve against: the thread's
/// [`Isa::with`] override if one is installed, the process default
/// otherwise.
///
/// # Panics
///
/// If `MTLSPLIT_FORCE_ISA` holds an invalid or unsupported value and the
/// caller never pre-flighted it via [`resolve_isa`].
pub(crate) fn kernels() -> &'static Kernels {
    if let Some(kt) = OVERRIDE.with(Cell::get) {
        return kt;
    }
    match default_kernels() {
        Ok(kt) => kt,
        Err(err) => panic!("MTLSPLIT_FORCE_ISA rejected: {err}"),
    }
}

/// Resolves (and memoises) the process-default dispatch path, surfacing an
/// invalid `MTLSPLIT_FORCE_ISA` override as a typed error instead of the
/// panic the kernels themselves would raise. Call early — at program start —
/// to reject bad overrides gracefully.
///
/// # Errors
///
/// [`TensorError::UnknownIsa`] for an unrecognised override value,
/// [`TensorError::UnsupportedIsa`] for a path this CPU cannot run.
pub fn resolve_isa() -> Result<Isa> {
    default_kernels().map(|kt| kt.isa)
}

/// The dispatch path the calling thread's kernel calls would use right now:
/// the [`Isa::with`] override if inside one, the process default otherwise.
///
/// # Panics
///
/// Like the kernels, panics on an invalid `MTLSPLIT_FORCE_ISA` override —
/// pre-flight with [`resolve_isa`] to handle that as a typed error.
pub fn active_isa() -> Isa {
    kernels().isa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_parses_canonical_names_and_rejects_unknowns() {
        assert_eq!("scalar".parse::<Isa>(), Ok(Isa::Scalar));
        assert_eq!("avx2".parse::<Isa>(), Ok(Isa::Avx2));
        assert_eq!("avx512".parse::<Isa>(), Ok(Isa::Avx512));
        for bad in ["", "AVX2", "neon", "avx-512", "scalar "] {
            assert_eq!(
                bad.parse::<Isa>(),
                Err(TensorError::UnknownIsa {
                    value: bad.to_string()
                }),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
            assert_eq!(isa.name().parse::<Isa>(), Ok(isa));
            assert_eq!(isa.to_string(), isa.name());
        }
    }

    #[test]
    fn scalar_is_always_supported_and_available() {
        assert!(Isa::Scalar.is_supported());
        let available = Isa::available();
        assert_eq!(available[0], Isa::Scalar);
        assert!(available.contains(&Isa::detect_best()));
    }

    #[test]
    fn with_pins_and_restores_the_active_path() {
        let outer = active_isa();
        let inner = Isa::Scalar
            .with(|| {
                // Nested pinning works and unwinds in order.
                let nested = Isa::detect_best().with(active_isa).unwrap();
                assert_eq!(nested, Isa::detect_best());
                active_isa()
            })
            .unwrap();
        assert_eq!(inner, Isa::Scalar);
        assert_eq!(active_isa(), outer);
    }

    #[test]
    fn every_available_table_is_consistent() {
        for isa in Isa::available() {
            let kt = table(isa);
            assert_eq!(kt.isa, isa);
            assert!(kt.mr > 0 && kt.nr > 0);
            assert!(kt.mc.is_multiple_of(kt.mr), "mc must be mr-aligned");
            assert!(kt.min_macs_per_thread >= SCALAR_MIN_MACS);
        }
    }

    #[test]
    fn fma_single_matches_mul_add_when_available() {
        if !fma_available() {
            return;
        }
        for (a, b, acc) in [
            (1.5f32, -2.25, 0.125),
            (3.0e-7, 1.0e7, -3.0),
            (0.1, 0.2, 0.3),
        ] {
            assert_eq!(fma_single(a, b, acc).to_bits(), a.mul_add(b, acc).to_bits());
        }
    }
}
