//! x86-64 backends: the AVX2 and AVX-512 [`SimdF32`] implementations, the
//! `#[target_feature]` wrappers that instantiate the generic kernel bodies
//! with those types, and the dispatch tables that expose them as safe
//! function pointers.
//!
//! This is the only file in the crate that contains `unsafe` code. The
//! safety argument is uniform: every `unsafe` block here calls a
//! `#[target_feature]` function, and each such function is reachable only
//! through a dispatch table that `simd::table`/`simd::scalar_table` select
//! after `is_x86_feature_detected!` confirmed the features at runtime.

use super::vec::{gemv_kernel, sub_kernel, tile_kernel, SimdF32};
use super::{Isa, Kernels, AVX2_MIN_MACS, AVX512_MIN_MACS, SCALAR_MIN_MACS};
use crate::kernels::{gemv_row_impl, micro_kernel_impl, Epilogue, TilePass, MC, MR, NR};
use core::arch::x86_64::*;

/// One 256-bit vector: 8 `f32` lanes (AVX2 + FMA).
#[derive(Clone, Copy)]
pub(crate) struct F32x8(__m256);

impl SimdF32 for F32x8 {
    const LANES: usize = 8;
    type Index = __m256i;

    #[inline(always)]
    unsafe fn zero() -> Self {
        Self(_mm256_setzero_ps())
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        Self(_mm256_set1_ps(x))
    }
    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        Self(_mm256_loadu_ps(ptr))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        _mm256_storeu_ps(ptr, self.0)
    }
    #[inline(always)]
    unsafe fn fma(self, b: Self, acc: Self) -> Self {
        Self(_mm256_fmadd_ps(self.0, b.0, acc.0))
    }
    #[inline(always)]
    unsafe fn add(self, b: Self) -> Self {
        Self(_mm256_add_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn sub(self, b: Self) -> Self {
        Self(_mm256_sub_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn mul(self, b: Self) -> Self {
        Self(_mm256_mul_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn div(self, b: Self) -> Self {
        Self(_mm256_div_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn max(self, b: Self) -> Self {
        Self(_mm256_max_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn min(self, b: Self) -> Self {
        Self(_mm256_min_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn index_stride(stride: usize) -> Self::Index {
        _mm256_mullo_epi32(
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
            _mm256_set1_epi32(stride as i32),
        )
    }
    #[inline(always)]
    unsafe fn gather(base: *const f32, index: Self::Index) -> Self {
        Self(_mm256_i32gather_ps::<4>(base, index))
    }
}

/// One 512-bit vector: 16 `f32` lanes (AVX-512F).
#[derive(Clone, Copy)]
pub(crate) struct F32x16(__m512);

impl SimdF32 for F32x16 {
    const LANES: usize = 16;
    type Index = __m512i;

    #[inline(always)]
    unsafe fn zero() -> Self {
        Self(_mm512_setzero_ps())
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        Self(_mm512_set1_ps(x))
    }
    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        Self(_mm512_loadu_ps(ptr))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        _mm512_storeu_ps(ptr, self.0)
    }
    #[inline(always)]
    unsafe fn fma(self, b: Self, acc: Self) -> Self {
        Self(_mm512_fmadd_ps(self.0, b.0, acc.0))
    }
    #[inline(always)]
    unsafe fn add(self, b: Self) -> Self {
        Self(_mm512_add_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn sub(self, b: Self) -> Self {
        Self(_mm512_sub_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn mul(self, b: Self) -> Self {
        Self(_mm512_mul_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn div(self, b: Self) -> Self {
        Self(_mm512_div_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn max(self, b: Self) -> Self {
        Self(_mm512_max_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn min(self, b: Self) -> Self {
        Self(_mm512_min_ps(self.0, b.0))
    }
    #[inline(always)]
    unsafe fn index_stride(stride: usize) -> Self::Index {
        _mm512_mullo_epi32(
            _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
            _mm512_set1_epi32(stride as i32),
        )
    }
    #[inline(always)]
    unsafe fn gather(base: *const f32, index: Self::Index) -> Self {
        Self(_mm512_i32gather_ps::<4>(index, base))
    }
}

/// One scalar hardware FMA for builds without the `fma` target feature —
/// the runtime branch of [`crate::fused_mul_add`].
///
/// # Safety
///
/// The CPU must support FMA (callers gate on `fma_available`).
#[target_feature(enable = "fma")]
pub(crate) unsafe fn fma_scalar(a: f32, b: f32, acc: f32) -> f32 {
    a.mul_add(b, acc)
}

// ---------------------------------------------------------------------------
// Explicit-SIMD tile wrappers.
//
// Each pair is one `#[target_feature]` instantiation of a generic kernel
// body plus the safe entry the dispatch table stores. AVX2 runs a 6 x (2*8)
// tile (12 accumulator + 2 B + 1 broadcast = 15 of 16 ymm registers);
// AVX-512 runs 14 x (2*16) (28 + 2 + 1 = 31 of 32 zmm registers).

/// AVX2 micro-tile rows.
const AVX2_MR: usize = 6;
/// AVX2 micro-tile columns (2 x 8 lanes).
const AVX2_NR: usize = 16;
/// AVX-512 micro-tile rows.
const AVX512_MR: usize = 14;
/// AVX-512 micro-tile columns (2 x 16 lanes).
const AVX512_NR: usize = 32;

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_avx2(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    tile_kernel::<F32x8, AVX2_MR, 2>(
        panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
    )
}

#[allow(clippy::too_many_arguments)]
fn micro_avx2_entry(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    // SAFETY: stored only in the AVX2 table, selected after detection.
    unsafe {
        micro_avx2(
            panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
        )
    }
}

#[target_feature(enable = "avx512f,avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_avx512(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    tile_kernel::<F32x16, AVX512_MR, 2>(
        panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
    )
}

#[allow(clippy::too_many_arguments)]
fn micro_avx512_entry(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    // SAFETY: stored only in the AVX-512 table, selected after detection.
    unsafe {
        micro_avx512(
            panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
        )
    }
}

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemv_avx2(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemv_kernel::<F32x8>(trans_b, n, k, alpha, a, b, beta, c, epilogue)
}

#[allow(clippy::too_many_arguments)]
fn gemv_avx2_entry(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    // SAFETY: stored only in the AVX2 table, selected after detection.
    unsafe { gemv_avx2(trans_b, n, k, alpha, a, b, beta, c, epilogue) }
}

#[target_feature(enable = "avx512f,avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemv_avx512(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemv_kernel::<F32x16>(trans_b, n, k, alpha, a, b, beta, c, epilogue)
}

#[allow(clippy::too_many_arguments)]
fn gemv_avx512_entry(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    // SAFETY: stored only in the AVX-512 table, selected after detection.
    unsafe { gemv_avx512(trans_b, n, k, alpha, a, b, beta, c, epilogue) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sub_avx2(xs: &mut [f32], s: f32) {
    sub_kernel::<F32x8>(xs, s)
}

fn sub_avx2_entry(xs: &mut [f32], s: f32) {
    // SAFETY: stored only in the AVX2 table, selected after detection.
    unsafe { sub_avx2(xs, s) }
}

#[target_feature(enable = "avx512f,avx2,fma")]
unsafe fn sub_avx512(xs: &mut [f32], s: f32) {
    sub_kernel::<F32x16>(xs, s)
}

fn sub_avx512_entry(xs: &mut [f32], s: f32) {
    // SAFETY: stored only in the AVX-512 table, selected after detection.
    unsafe { sub_avx512(xs, s) }
}

// ---------------------------------------------------------------------------
// Feature-enabled re-instantiations of the scalar 4 x 24 tile.
//
// A portable (no `target-cpu=native`) build compiles `fused_mul_add` without
// the `fma` feature, but the machine may still have the unit. These
// wrappers re-instantiate the *same* scalar kernel bodies with the detected
// features enabled, so `f32::mul_add` lowers to `vfmadd` and LLVM
// autovectorises the tile exactly as a native build would — and the bits
// match the explicit-SIMD paths (all correctly-rounded FMA chains).

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_scalar_avx2_fma(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    micro_kernel_impl::<true>(
        panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
    )
}

#[allow(clippy::too_many_arguments)]
fn micro_scalar_avx2_fma_entry(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    // SAFETY: stored only in SCALAR_AVX2_FMA, selected after detection.
    unsafe {
        micro_scalar_avx2_fma(
            panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
        )
    }
}

#[target_feature(enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_scalar_fma(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    micro_kernel_impl::<true>(
        panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
    )
}

#[allow(clippy::too_many_arguments)]
fn micro_scalar_fma_entry(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    // SAFETY: stored only in SCALAR_FMA, selected after detection.
    unsafe {
        micro_scalar_fma(
            panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
        )
    }
}

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemv_scalar_avx2_fma(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemv_row_impl::<true>(trans_b, n, k, alpha, a, b, beta, c, epilogue)
}

#[allow(clippy::too_many_arguments)]
fn gemv_scalar_avx2_fma_entry(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    // SAFETY: stored only in SCALAR_AVX2_FMA, selected after detection.
    unsafe { gemv_scalar_avx2_fma(trans_b, n, k, alpha, a, b, beta, c, epilogue) }
}

#[target_feature(enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemv_scalar_fma(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemv_row_impl::<true>(trans_b, n, k, alpha, a, b, beta, c, epilogue)
}

#[allow(clippy::too_many_arguments)]
fn gemv_scalar_fma_entry(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    // SAFETY: stored only in SCALAR_FMA, selected after detection.
    unsafe { gemv_scalar_fma(trans_b, n, k, alpha, a, b, beta, c, epilogue) }
}

// ---------------------------------------------------------------------------
// Dispatch tables.

/// The explicit AVX2 path.
pub(crate) static AVX2: Kernels = Kernels {
    isa: Isa::Avx2,
    mr: AVX2_MR,
    nr: AVX2_NR,
    mc: 126, // 21 tiles of 6 rows, ~= the scalar path's 128-row block
    min_macs_per_thread: AVX2_MIN_MACS,
    micro: micro_avx2_entry,
    gemv: gemv_avx2_entry,
    sub: sub_avx2_entry,
};

/// The explicit AVX-512 path.
pub(crate) static AVX512: Kernels = Kernels {
    isa: Isa::Avx512,
    mr: AVX512_MR,
    nr: AVX512_NR,
    mc: 140, // 10 tiles of 14 rows
    min_macs_per_thread: AVX512_MIN_MACS,
    micro: micro_avx512_entry,
    gemv: gemv_avx512_entry,
    sub: sub_avx512_entry,
};

/// The scalar path recompiled with AVX2 + FMA enabled, for portable builds
/// running on AVX2 hardware.
pub(crate) static SCALAR_AVX2_FMA: Kernels = Kernels {
    isa: Isa::Scalar,
    mr: MR,
    nr: NR,
    mc: MC,
    min_macs_per_thread: SCALAR_MIN_MACS,
    micro: micro_scalar_avx2_fma_entry,
    gemv: gemv_scalar_avx2_fma_entry,
    sub: super::sub_scalar,
};

/// The scalar path recompiled with only FMA enabled, for the rare FMA-but-
/// not-AVX2 machines (e.g. AMD Piledriver).
pub(crate) static SCALAR_FMA: Kernels = Kernels {
    isa: Isa::Scalar,
    mr: MR,
    nr: NR,
    mc: MC,
    min_macs_per_thread: SCALAR_MIN_MACS,
    micro: micro_scalar_fma_entry,
    gemv: gemv_scalar_fma_entry,
    sub: super::sub_scalar,
};
