//! Zero-dependency scoped-thread parallelism for the compute kernels.
//!
//! Every parallel split in this crate partitions *output* elements: each
//! thread owns a disjoint, contiguous slice of the result buffer and runs
//! exactly the same per-element accumulation it would run single-threaded.
//! No thread ever writes an element another thread reads, there are no
//! atomics on the hot path, and — because the per-element floating-point
//! accumulation order never depends on the partition — results are
//! **bit-identical for every thread count**.
//!
//! The thread count comes from a [`Parallelism`] value. Kernels that take no
//! explicit configuration (such as [`crate::Tensor::matmul`]) read the
//! calling thread's ambient setting via [`Parallelism::current`], which
//! defaults to [`Parallelism::auto`] (one thread per available core).
//! Embedders that already shard work across threads — the serving worker
//! pool, for instance — pin their workers to [`Parallelism::single`] so the
//! kernels do not oversubscribe the machine.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;

/// How many threads the compute kernels may use.
///
/// `Parallelism` is a plain copyable value with three constructors:
///
/// * [`Parallelism::auto`] — resolve to `std::thread::available_parallelism`
///   at the point of use (the default),
/// * [`Parallelism::single`] — always one thread,
/// * [`Parallelism::fixed`] — an explicit thread count.
///
/// The setting only ever bounds the *worker count*; it never changes
/// numerical results. See the module docs for the determinism argument.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::Parallelism;
///
/// assert_eq!(Parallelism::single().resolve(), 1);
/// assert_eq!(Parallelism::fixed(4).resolve(), 4);
/// assert!(Parallelism::auto().resolve() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

thread_local! {
    /// The calling thread's ambient parallelism, read by kernels that take
    /// no explicit configuration.
    static CURRENT: Cell<Parallelism> = const { Cell::new(Parallelism(0)) };
}

impl Parallelism {
    /// One worker per core: resolves to `available_parallelism` when used.
    pub fn auto() -> Self {
        Self(0)
    }

    /// Exactly one thread — kernels run inline on the caller.
    pub fn single() -> Self {
        Self(1)
    }

    /// An explicit thread count (clamped to at least 1).
    pub fn fixed(threads: usize) -> Self {
        Self(threads.max(1))
    }

    /// Whether this value defers to `available_parallelism`.
    pub fn is_auto(self) -> bool {
        self.0 == 0
    }

    /// The concrete thread count this value stands for, resolving
    /// [`Parallelism::auto`] against the machine.
    pub fn resolve(self) -> usize {
        match self.0 {
            0 => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }

    /// The ambient parallelism of the calling thread.
    ///
    /// This is what [`crate::Tensor::matmul`] and the convolution kernels
    /// use. It defaults to [`Parallelism::auto`] on every thread and is
    /// changed with [`Parallelism::make_current`].
    pub fn current() -> Self {
        CURRENT.with(Cell::get)
    }

    /// Installs this value as the calling thread's ambient parallelism.
    ///
    /// The setting is thread-local: a serving worker pinning itself to
    /// [`Parallelism::single`] does not affect a training loop running on
    /// another thread. Threads spawned by the kernels themselves never
    /// consult the ambient value (they execute their assigned slice
    /// inline), so nested oversubscription cannot occur.
    pub fn make_current(self) {
        CURRENT.with(|c| c.set(self));
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::auto()
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            0 => write!(f, "auto({})", self.resolve()),
            n => write!(f, "{n}"),
        }
    }
}

/// Splits `rows` into at most `parts` contiguous ranges whose starts are
/// multiples of `align` (except possibly the last end). Every row is covered
/// exactly once and ranges are returned in ascending order.
pub(crate) fn partition_rows(rows: usize, parts: usize, align: usize) -> Vec<Range<usize>> {
    let align = align.max(1);
    let parts = parts.max(1);
    // Ceil-divide twice so each chunk is an aligned block count.
    let blocks = rows.div_ceil(align);
    let blocks_per_part = blocks.div_ceil(parts);
    let chunk = blocks_per_part * align;
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        ranges.push(start..end);
        start = end;
    }
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    ranges
}

/// Runs `f(unit_index, unit_slice)` over every `unit_len` chunk of `buf`,
/// spreading contiguous runs of units across up to `threads` scoped threads.
///
/// Each unit is written by exactly one thread and the work done per unit is
/// independent of the thread count, so outputs are bit-identical however the
/// units are spread. With `threads <= 1` (or a single unit) everything runs
/// inline on the caller.
pub(crate) fn for_each_unit<F>(buf: &mut [f32], unit_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if unit_len == 0 || buf.is_empty() {
        return;
    }
    let mut units: Vec<&mut [f32]> = buf.chunks_mut(unit_len).collect();
    let total = units.len();
    let threads = threads.clamp(1, total);
    if threads == 1 {
        for (index, unit) in units.drain(..).enumerate() {
            f(index, unit);
        }
        return;
    }
    let per_thread = total.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut base = 0usize;
        let mut handles = Vec::new();
        while !units.is_empty() {
            let take = per_thread.min(units.len());
            let rest = units.split_off(take);
            let mine = std::mem::replace(&mut units, rest);
            let start = base;
            base += take;
            if units.is_empty() {
                // Run the final chunk inline: the caller is a worker too.
                for (offset, unit) in mine.into_iter().enumerate() {
                    f(start + offset, unit);
                }
            } else {
                handles.push(scope.spawn(move || {
                    for (offset, unit) in mine.into_iter().enumerate() {
                        f(start + offset, unit);
                    }
                }));
            }
        }
        for handle in handles {
            handle.join().expect("kernel worker thread panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(Parallelism::auto().resolve() >= 1);
        assert!(Parallelism::auto().is_auto());
        assert!(!Parallelism::fixed(2).is_auto());
    }

    #[test]
    fn fixed_zero_is_clamped_to_one() {
        assert_eq!(Parallelism::fixed(0).resolve(), 1);
    }

    #[test]
    fn current_is_thread_local() {
        Parallelism::fixed(3).make_current();
        assert_eq!(Parallelism::current().resolve(), 3);
        let other = std::thread::spawn(|| Parallelism::current().is_auto())
            .join()
            .unwrap();
        assert!(other, "a fresh thread must start at auto");
        Parallelism::auto().make_current();
    }

    #[test]
    fn partition_covers_every_row_once() {
        for rows in [0usize, 1, 5, 17, 64, 100] {
            for parts in [1usize, 2, 3, 4, 9] {
                for align in [1usize, 4, 8] {
                    let ranges = partition_rows(rows, parts, align);
                    let mut next = 0;
                    for range in &ranges {
                        assert_eq!(range.start, next);
                        assert!(range.end > range.start || rows == 0);
                        if range.end != rows {
                            assert!(range.end.is_multiple_of(align));
                        }
                        next = range.end;
                    }
                    assert_eq!(next, rows);
                }
            }
        }
    }

    #[test]
    fn for_each_unit_visits_every_unit_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            let mut buf = vec![0.0f32; 6 * 5];
            for_each_unit(&mut buf, 5, threads, |index, unit| {
                for x in unit.iter_mut() {
                    *x += (index + 1) as f32;
                }
            });
            for (index, chunk) in buf.chunks(5).enumerate() {
                assert!(chunk.iter().all(|&x| x == (index + 1) as f32));
            }
        }
    }

    #[test]
    fn display_formats_both_modes() {
        assert_eq!(Parallelism::fixed(2).to_string(), "2");
        assert!(Parallelism::auto().to_string().starts_with("auto("));
    }
}
