//! Zero-dependency scoped-thread parallelism for the compute kernels.
//!
//! Every parallel split in this crate partitions *output* elements: each
//! thread owns a disjoint, contiguous slice of the result buffer and runs
//! exactly the same per-element accumulation it would run single-threaded.
//! No thread ever writes an element another thread reads, there are no
//! atomics on the hot path, and — because the per-element floating-point
//! accumulation order never depends on the partition — results are
//! **bit-identical for every thread count**.
//!
//! The thread count comes from a [`Parallelism`] value. Kernels that take no
//! explicit configuration (such as [`crate::Tensor::matmul`]) read the
//! calling thread's ambient setting via [`Parallelism::current`], which
//! defaults to [`Parallelism::auto`] (one thread per available core).
//! Embedders that already shard work across threads — the serving worker
//! pool, for instance — pin their workers to [`Parallelism::single`] so the
//! kernels do not oversubscribe the machine.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;

/// How many threads the compute kernels may use.
///
/// `Parallelism` is a plain copyable value with three constructors:
///
/// * [`Parallelism::auto`] — resolve to `std::thread::available_parallelism`
///   at the point of use (the default),
/// * [`Parallelism::single`] — always one thread,
/// * [`Parallelism::fixed`] — an explicit thread count.
///
/// The setting only ever bounds the *worker count*; it never changes
/// numerical results. See the module docs for the determinism argument.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::Parallelism;
///
/// assert_eq!(Parallelism::single().resolve(), 1);
/// assert_eq!(Parallelism::fixed(4).resolve(), 4);
/// assert!(Parallelism::auto().resolve() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

thread_local! {
    /// The calling thread's ambient parallelism, read by kernels that take
    /// no explicit configuration.
    static CURRENT: Cell<Parallelism> = const { Cell::new(Parallelism(0)) };
}

impl Parallelism {
    /// One worker per core: resolves to `available_parallelism` when used.
    pub fn auto() -> Self {
        Self(0)
    }

    /// Exactly one thread — kernels run inline on the caller.
    pub fn single() -> Self {
        Self(1)
    }

    /// An explicit thread count (clamped to at least 1).
    pub fn fixed(threads: usize) -> Self {
        Self(threads.max(1))
    }

    /// Whether this value defers to `available_parallelism`.
    pub fn is_auto(self) -> bool {
        self.0 == 0
    }

    /// The concrete thread count this value stands for, resolving
    /// [`Parallelism::auto`] against the machine.
    pub fn resolve(self) -> usize {
        match self.0 {
            0 => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }

    /// The ambient parallelism of the calling thread.
    ///
    /// This is what [`crate::Tensor::matmul`] and the convolution kernels
    /// use. It defaults to [`Parallelism::auto`] on every thread and is
    /// changed with [`Parallelism::make_current`].
    pub fn current() -> Self {
        CURRENT.with(Cell::get)
    }

    /// Installs this value as the calling thread's ambient parallelism.
    ///
    /// The setting is thread-local: a serving worker pinning itself to
    /// [`Parallelism::single`] does not affect a training loop running on
    /// another thread. Threads spawned by the kernels themselves never
    /// consult the ambient value (they execute their assigned slice
    /// inline), so nested oversubscription cannot occur.
    pub fn make_current(self) {
        CURRENT.with(|c| c.set(self));
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::auto()
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            0 => write!(f, "auto({})", self.resolve()),
            n => write!(f, "{n}"),
        }
    }
}

/// Caps `requested` worker threads by the FLOP budget: one thread per
/// `macs_per_thread` multiply-accumulates, and always at least one.
///
/// Spawning and joining a scoped thread costs tens of microseconds; below
/// roughly one floor's worth of work per thread that overhead exceeds the
/// compute, so small problems must run inline. The `BENCH_kernels.json`
/// grid showed exactly that regression before the floor existed: 2- and
/// 4-thread GEMMs slower than single-threaded up to `n = 384`. The floor
/// is *per dispatch path* — a wider micro-kernel retires the same MACs in
/// fewer cycles, so the faster the path, the more work a worker must bring
/// to amortise its spawn (see `simd::{SCALAR,AVX2,AVX512}_MIN_MACS`). The
/// values were calibrated on the 1-core reference container (which can
/// only ever show the overhead side of the trade); on a real multi-core
/// host the crossover may sit lower, so re-tune there if mid-size GEMMs
/// profile as underthreaded. The cap only ever reduces the worker count,
/// never changes results (see the module docs).
///
/// Every kernel in this crate routes its thread count through this helper,
/// so a tiny GEMM or convolution never pays scoped-thread spawn cost no
/// matter what the ambient [`Parallelism`] asks for.
pub(crate) fn threads_for_macs(requested: usize, macs: usize, macs_per_thread: usize) -> usize {
    requested.min(macs / macs_per_thread.max(1)).max(1)
}

/// Splits `rows` into at most `parts` contiguous ranges whose starts are
/// multiples of `align` (except possibly the last end). Every row is covered
/// exactly once and ranges are returned in ascending order.
pub(crate) fn partition_rows(rows: usize, parts: usize, align: usize) -> Vec<Range<usize>> {
    let align = align.max(1);
    let parts = parts.max(1);
    // Ceil-divide twice so each chunk is an aligned block count.
    let blocks = rows.div_ceil(align);
    let blocks_per_part = blocks.div_ceil(parts);
    let chunk = blocks_per_part * align;
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        ranges.push(start..end);
        start = end;
    }
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    ranges
}

/// Runs `f(unit_index, unit_slice)` over every `unit_len` chunk of `buf`,
/// spreading contiguous runs of units across up to `threads` scoped threads.
///
/// Each unit is written by exactly one thread and the work done per unit is
/// independent of the thread count, so outputs are bit-identical however the
/// units are spread. With `threads <= 1` (or a single unit) everything runs
/// inline on the caller.
pub(crate) fn for_each_unit<F>(buf: &mut [f32], unit_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if unit_len == 0 || buf.is_empty() {
        return;
    }
    let total = buf.len().div_ceil(unit_len);
    let threads = threads.clamp(1, total);
    if threads == 1 {
        // Inline fast path: no unit list is materialised, so a
        // single-threaded kernel call performs no heap allocation at all —
        // the planned inference runtime relies on this.
        for (index, unit) in buf.chunks_mut(unit_len).enumerate() {
            f(index, unit);
        }
        return;
    }
    let mut units: Vec<&mut [f32]> = buf.chunks_mut(unit_len).collect();
    let per_thread = total.div_ceil(threads);
    // Spawned workers start with a fresh thread-local ISA override; install
    // the caller's resolved dispatch table in each so a pinned path (for
    // example a forced-scalar property test) stays pinned across the scope.
    let kt = crate::simd::kernels();
    std::thread::scope(|scope| {
        let f = &f;
        let mut base = 0usize;
        let mut handles = Vec::new();
        while !units.is_empty() {
            let take = per_thread.min(units.len());
            let rest = units.split_off(take);
            let mine = std::mem::replace(&mut units, rest);
            let start = base;
            base += take;
            if units.is_empty() {
                // Run the final chunk inline: the caller is a worker too.
                for (offset, unit) in mine.into_iter().enumerate() {
                    f(start + offset, unit);
                }
            } else {
                handles.push(scope.spawn(move || {
                    crate::simd::with_kernels(kt, || {
                        for (offset, unit) in mine.into_iter().enumerate() {
                            f(start + offset, unit);
                        }
                    })
                }));
            }
        }
        for handle in handles {
            handle.join().expect("kernel worker thread panicked");
        }
    });
}

/// [`for_each_unit`] over two parallel buffers: `f(index, unit, extra_unit)`
/// receives the `unit_len` chunk of `buf` *and* the `extra_len` chunk of
/// `extra` for the same unit index. Both are written by exactly one thread;
/// the same determinism argument applies. `extra_len` must be positive and
/// `extra` must hold one chunk per unit of `buf`.
pub(crate) fn for_each_unit_pair<F>(
    buf: &mut [f32],
    unit_len: usize,
    extra: &mut [f32],
    extra_len: usize,
    threads: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    if unit_len == 0 || buf.is_empty() {
        return;
    }
    debug_assert!(extra_len > 0);
    debug_assert_eq!(buf.len() / unit_len * extra_len, extra.len());
    let total = buf.len().div_ceil(unit_len);
    let threads = threads.clamp(1, total);
    if threads == 1 {
        // Inline fast path, allocation-free like `for_each_unit`.
        for (index, (unit, extra_unit)) in buf
            .chunks_mut(unit_len)
            .zip(extra.chunks_mut(extra_len))
            .enumerate()
        {
            f(index, unit, extra_unit);
        }
        return;
    }
    let mut units: Vec<(&mut [f32], &mut [f32])> = buf
        .chunks_mut(unit_len)
        .zip(extra.chunks_mut(extra_len))
        .collect();
    let per_thread = total.div_ceil(threads);
    // Same dispatch-table propagation as `for_each_unit`.
    let kt = crate::simd::kernels();
    std::thread::scope(|scope| {
        let f = &f;
        let mut base = 0usize;
        let mut handles = Vec::new();
        while !units.is_empty() {
            let take = per_thread.min(units.len());
            let rest = units.split_off(take);
            let mine = std::mem::replace(&mut units, rest);
            let start = base;
            base += take;
            if units.is_empty() {
                for (offset, (unit, extra_unit)) in mine.into_iter().enumerate() {
                    f(start + offset, unit, extra_unit);
                }
            } else {
                handles.push(scope.spawn(move || {
                    crate::simd::with_kernels(kt, || {
                        for (offset, (unit, extra_unit)) in mine.into_iter().enumerate() {
                            f(start + offset, unit, extra_unit);
                        }
                    })
                }));
            }
        }
        for handle in handles {
            handle.join().expect("kernel worker thread panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(Parallelism::auto().resolve() >= 1);
        assert!(Parallelism::auto().is_auto());
        assert!(!Parallelism::fixed(2).is_auto());
    }

    #[test]
    fn fixed_zero_is_clamped_to_one() {
        assert_eq!(Parallelism::fixed(0).resolve(), 1);
    }

    #[test]
    fn current_is_thread_local() {
        Parallelism::fixed(3).make_current();
        assert_eq!(Parallelism::current().resolve(), 3);
        let other = std::thread::spawn(|| Parallelism::current().is_auto())
            .join()
            .unwrap();
        assert!(other, "a fresh thread must start at auto");
        Parallelism::auto().make_current();
    }

    #[test]
    fn partition_covers_every_row_once() {
        for rows in [0usize, 1, 5, 17, 64, 100] {
            for parts in [1usize, 2, 3, 4, 9] {
                for align in [1usize, 4, 8] {
                    let ranges = partition_rows(rows, parts, align);
                    let mut next = 0;
                    for range in &ranges {
                        assert_eq!(range.start, next);
                        assert!(range.end > range.start || rows == 0);
                        if range.end != rows {
                            assert!(range.end.is_multiple_of(align));
                        }
                        next = range.end;
                    }
                    assert_eq!(next, rows);
                }
            }
        }
    }

    #[test]
    fn for_each_unit_visits_every_unit_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            let mut buf = vec![0.0f32; 6 * 5];
            for_each_unit(&mut buf, 5, threads, |index, unit| {
                for x in unit.iter_mut() {
                    *x += (index + 1) as f32;
                }
            });
            for (index, chunk) in buf.chunks(5).enumerate() {
                assert!(chunk.iter().all(|&x| x == (index + 1) as f32));
            }
        }
    }

    #[test]
    fn small_problems_never_get_extra_threads() {
        const FLOOR: usize = 16 * 1024 * 1024;
        // Below one thread's worth of MACs everything runs inline.
        assert_eq!(threads_for_macs(8, 64 * 64 * 64, FLOOR), 1);
        assert_eq!(threads_for_macs(8, 128 * 128 * 128, FLOOR), 1);
        // Enough work buys threads one at a time, capped by the request.
        assert_eq!(threads_for_macs(8, 2 * FLOOR, FLOOR), 2);
        assert_eq!(threads_for_macs(2, 64 * FLOOR, FLOOR), 2);
        // Degenerate inputs still yield a worker, and a zero floor is
        // treated as one rather than dividing by zero.
        assert_eq!(threads_for_macs(0, 0, FLOOR), 1);
        assert_eq!(threads_for_macs(4, FLOOR, 0), 4);
    }

    #[test]
    fn display_formats_both_modes() {
        assert_eq!(Parallelism::fixed(2).to_string(), "2");
        assert!(Parallelism::auto().to_string().starts_with("auto("));
    }
}
