//! 2-D pooling operators (max, average, global average) in NCHW layout.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use mtlsplit_obs as obs;

/// Opens the pooling kernels' shared tracing span (a no-op branch while
/// tracing is disabled).
fn pool_span(name: &'static str, dims: [usize; 4]) -> obs::Span {
    obs::span_dims(
        name,
        obs::SpanKind::Kernel,
        [
            dims[0] as u32,
            dims[1] as u32,
            dims[2] as u32,
            dims[3] as u32,
        ],
    )
}

fn check_rank4(input: &Tensor, op: &'static str) -> Result<[usize; 4]> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: input.rank(),
        });
    }
    let d = input.dims();
    Ok([d[0], d[1], d[2], d[3]])
}

fn pooled_size(size: usize, window: usize, stride: usize, op: &'static str) -> Result<usize> {
    if window == 0 || stride == 0 {
        return Err(TensorError::InvalidWindow {
            reason: format!("{op}: window and stride must be positive"),
        });
    }
    if window > size {
        return Err(TensorError::InvalidWindow {
            reason: format!("{op}: window {window} larger than input {size}"),
        });
    }
    Ok((size - window) / stride + 1)
}

/// Max pooling with a square window.
///
/// Returns the pooled tensor and the flat index of the winning element for
/// each output position (needed by [`max_pool2d_backward`]).
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the window does not fit.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use mtlsplit_tensor::{max_pool2d, Tensor};
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4])?;
/// let (pooled, _indices) = max_pool2d(&x, 2, 2)?;
/// assert_eq!(pooled.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
/// # Ok(())
/// # }
/// ```
pub fn max_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<(Tensor, Vec<usize>)> {
    let dims = pooled_dims(input, window, stride, "max_pool2d")?;
    let mut out = vec![0.0f32; dims.iter().product()];
    let mut indices = Vec::new();
    max_pool2d_train_into(input, window, stride, &mut out, &mut indices)?;
    Ok((Tensor::from_vec(out, &dims)?, indices))
}

/// [`max_pool2d`] writing the pooled values into a caller-provided buffer
/// and the argmax indices into a reusable `Vec` (cleared and refilled, so
/// its capacity is recycled across training steps). Returns the output
/// dimensions.
///
/// # Errors
///
/// Returns an error on the same shape problems as [`max_pool2d`], or if
/// `out` has the wrong length.
pub fn max_pool2d_train_into(
    input: &Tensor,
    window: usize,
    stride: usize,
    out: &mut [f32],
    indices: &mut Vec<usize>,
) -> Result<[usize; 4]> {
    let dims = pooled_dims(input, window, stride, "max_pool2d")?;
    check_out_len(out, &dims)?;
    let _span = pool_span("max_pool2d", dims);
    let [batch, channels, out_h, out_w] = dims;
    let (height, width) = (input.dims()[2], input.dims()[3]);
    let src = input.as_slice();
    indices.clear();
    indices.resize(out.len(), 0);
    for b in 0..batch {
        for c in 0..channels {
            let plane = (b * channels + c) * height * width;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut best_idx = plane + (oy * stride) * width + ox * stride;
                    let mut best = src[best_idx];
                    for ky in 0..window {
                        for kx in 0..window {
                            let idx = plane + (oy * stride + ky) * width + ox * stride + kx;
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((b * channels + c) * out_h + oy) * out_w + ox;
                    out[o] = best;
                    indices[o] = best_idx;
                }
            }
        }
    }
    Ok(dims)
}

/// Index-free max pooling for the inference hot path: identical output to
/// [`max_pool2d`] without allocating or filling the argmax-indices buffer
/// (which only the backward pass needs).
///
/// # Errors
///
/// Returns an error for non-rank-4 input or a window/stride that does not
/// tile the spatial extent.
pub fn max_pool2d_infer(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    let dims = pooled_dims(input, window, stride, "max_pool2d")?;
    let mut out = vec![0.0f32; dims.iter().product()];
    max_pool2d_infer_into(input, window, stride, &mut out)?;
    Tensor::from_vec(out, &dims)
}

/// Output dimensions of a pooled tensor, shared by the `_into` kernels so a
/// caller can size an arena buffer before pooling into it.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the window does not fit.
pub fn pooled_dims(
    input: &Tensor,
    window: usize,
    stride: usize,
    op: &'static str,
) -> Result<[usize; 4]> {
    let [batch, channels, height, width] = check_rank4(input, op)?;
    let out_h = pooled_size(height, window, stride, op)?;
    let out_w = pooled_size(width, window, stride, op)?;
    Ok([batch, channels, out_h, out_w])
}

fn check_out_len(out: &[f32], dims: &[usize; 4]) -> Result<()> {
    let expected: usize = dims.iter().product();
    if out.len() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    Ok(())
}

/// [`max_pool2d_infer`] writing into a caller-provided buffer (fully
/// overwritten, so a recycled arena buffer is safe). Returns the output
/// dimensions.
///
/// # Errors
///
/// Returns an error on the same shape problems as [`max_pool2d_infer`], or
/// if `out` has the wrong length.
pub fn max_pool2d_infer_into(
    input: &Tensor,
    window: usize,
    stride: usize,
    out: &mut [f32],
) -> Result<[usize; 4]> {
    let dims = pooled_dims(input, window, stride, "max_pool2d")?;
    check_out_len(out, &dims)?;
    let _span = pool_span("max_pool2d", dims);
    let [batch, channels, out_h, out_w] = dims;
    let (height, width) = (input.dims()[2], input.dims()[3]);
    let src = input.as_slice();
    for b in 0..batch {
        for c in 0..channels {
            let plane = (b * channels + c) * height * width;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut best = src[plane + (oy * stride) * width + ox * stride];
                    for ky in 0..window {
                        for kx in 0..window {
                            let idx = plane + (oy * stride + ky) * width + ox * stride + kx;
                            if src[idx] > best {
                                best = src[idx];
                            }
                        }
                    }
                    out[((b * channels + c) * out_h + oy) * out_w + ox] = best;
                }
            }
        }
    }
    Ok(dims)
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// element that produced the maximum.
///
/// # Errors
///
/// Returns an error if `grad_output` and `indices` disagree in length.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    indices: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    let mut grad_input = Tensor::zeros(input_dims);
    max_pool2d_backward_into(grad_output, indices, grad_input.as_mut_slice())?;
    Ok(grad_input)
}

/// [`max_pool2d_backward`] writing into a caller-provided buffer (fully
/// overwritten: zeroed, then scattered into — a recycled arena buffer is
/// safe).
///
/// # Errors
///
/// Returns an error if `grad_output` and `indices` disagree in length.
pub fn max_pool2d_backward_into(
    grad_output: &Tensor,
    indices: &[usize],
    grad_input: &mut [f32],
) -> Result<()> {
    if grad_output.len() != indices.len() {
        return Err(TensorError::LengthMismatch {
            expected: indices.len(),
            actual: grad_output.len(),
        });
    }
    let _span = pool_span("max_pool2d_backward", [grad_output.len(), 0, 0, 0]);
    grad_input.fill(0.0);
    for (&idx, &g) in indices.iter().zip(grad_output.as_slice()) {
        grad_input[idx] += g;
    }
    Ok(())
}

/// Average pooling with a square window.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the window does not fit.
pub fn avg_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    let dims = pooled_dims(input, window, stride, "avg_pool2d")?;
    let mut out = vec![0.0f32; dims.iter().product()];
    avg_pool2d_into(input, window, stride, &mut out)?;
    Tensor::from_vec(out, &dims)
}

/// [`avg_pool2d`] writing into a caller-provided buffer (fully overwritten).
/// Returns the output dimensions.
///
/// # Errors
///
/// Returns an error on the same shape problems as [`avg_pool2d`], or if
/// `out` has the wrong length.
pub fn avg_pool2d_into(
    input: &Tensor,
    window: usize,
    stride: usize,
    out: &mut [f32],
) -> Result<[usize; 4]> {
    let dims = pooled_dims(input, window, stride, "avg_pool2d")?;
    check_out_len(out, &dims)?;
    let _span = pool_span("avg_pool2d", dims);
    let [batch, channels, out_h, out_w] = dims;
    let (height, width) = (input.dims()[2], input.dims()[3]);
    let src = input.as_slice();
    let norm = 1.0 / (window * window) as f32;
    for b in 0..batch {
        for c in 0..channels {
            let plane = (b * channels + c) * height * width;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = 0.0f32;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += src[plane + (oy * stride + ky) * width + ox * stride + kx];
                        }
                    }
                    out[((b * channels + c) * out_h + oy) * out_w + ox] = acc * norm;
                }
            }
        }
    }
    Ok(dims)
}

/// Backward pass of [`avg_pool2d`]: distributes each output gradient evenly
/// over its window.
///
/// # Errors
///
/// Returns an error if `grad_output` is not rank 4 or inconsistent with the
/// original input dimensions.
pub fn avg_pool2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
) -> Result<Tensor> {
    let mut grad_input = Tensor::zeros(input_dims);
    avg_pool2d_backward_into(
        grad_output,
        input_dims,
        window,
        stride,
        grad_input.as_mut_slice(),
    )?;
    Ok(grad_input)
}

/// [`avg_pool2d_backward`] writing into a caller-provided buffer (fully
/// overwritten: zeroed, then accumulated into — a recycled arena buffer is
/// safe).
///
/// # Errors
///
/// Returns an error if `grad_output` is not rank 4, inconsistent with the
/// original input dimensions, or `grad_input` has the wrong length.
pub fn avg_pool2d_backward_into(
    grad_output: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
    grad_input: &mut [f32],
) -> Result<()> {
    let [batch, channels, out_h, out_w] = check_rank4(grad_output, "avg_pool2d_backward")?;
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "avg_pool2d_backward",
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let expected: usize = input_dims.iter().product();
    if grad_input.len() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: grad_input.len(),
        });
    }
    let (height, width) = (input_dims[2], input_dims[3]);
    let _span = pool_span("avg_pool2d_backward", [batch, channels, out_h, out_w]);
    grad_input.fill(0.0);
    let gi = grad_input;
    let go = grad_output.as_slice();
    let norm = 1.0 / (window * window) as f32;
    for b in 0..batch {
        for c in 0..channels {
            let plane = (b * channels + c) * height * width;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let g = go[((b * channels + c) * out_h + oy) * out_w + ox] * norm;
                    for ky in 0..window {
                        for kx in 0..window {
                            gi[plane + (oy * stride + ky) * width + ox * stride + kx] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Global average pooling: reduces `[batch, channels, h, w]` to
/// `[batch, channels]` by averaging every spatial position.
///
/// # Errors
///
/// Returns an error if the input is not rank 4.
pub fn global_avg_pool2d(input: &Tensor) -> Result<Tensor> {
    let [batch, channels, ..] = check_rank4(input, "global_avg_pool2d")?;
    let mut out = vec![0.0f32; batch * channels];
    global_avg_pool2d_into(input, &mut out)?;
    Tensor::from_vec(out, &[batch, channels])
}

/// [`global_avg_pool2d`] writing into a caller-provided buffer (fully
/// overwritten). Returns the output dimensions `[batch, channels]`.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or `out` has the wrong
/// length.
pub fn global_avg_pool2d_into(input: &Tensor, out: &mut [f32]) -> Result<[usize; 2]> {
    let [batch, channels, height, width] = check_rank4(input, "global_avg_pool2d")?;
    if out.len() != batch * channels {
        return Err(TensorError::LengthMismatch {
            expected: batch * channels,
            actual: out.len(),
        });
    }
    let _span = pool_span("global_avg_pool2d", [batch, channels, height, width]);
    let src = input.as_slice();
    let norm = 1.0 / (height * width).max(1) as f32;
    for b in 0..batch {
        for c in 0..channels {
            let plane = (b * channels + c) * height * width;
            out[b * channels + c] = src[plane..plane + height * width].iter().sum::<f32>() * norm;
        }
    }
    Ok([batch, channels])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn max_pool_picks_window_maxima() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let (pooled, indices) = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(pooled.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(indices, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_infer_matches_the_indexed_kernel() {
        let mut rng = StdRng::seed_from(9);
        for (window, stride) in [(2, 2), (3, 1), (2, 1)] {
            let x = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
            let (indexed, _) = max_pool2d(&x, window, stride).unwrap();
            assert_eq!(max_pool2d_infer(&x, window, stride).unwrap(), indexed);
        }
        assert!(max_pool2d_infer(&Tensor::zeros(&[2, 4]), 2, 2).is_err());
    }

    #[test]
    fn max_pool_backward_routes_gradient_to_maximum() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let (pooled, indices) = max_pool2d(&x, 2, 2).unwrap();
        let grad = Tensor::ones(pooled.dims());
        let gi = max_pool2d_backward(&grad, &indices, x.dims()).unwrap();
        assert_eq!(gi.sum(), 4.0);
        assert_eq!(gi.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(gi.at(&[0, 0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn avg_pool_averages_each_window() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let pooled = avg_pool2d(&x, 2, 2).unwrap();
        assert_eq!(pooled.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_is_uniform_within_window() {
        let dims = [1usize, 1, 4, 4];
        let grad = Tensor::ones(&[1, 1, 2, 2]);
        let gi = avg_pool2d_backward(&grad, &dims, 2, 2).unwrap();
        assert!(gi.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
        assert!((gi.sum() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn avg_pool_backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from(21);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let weights = Tensor::randn(&[1, 2, 2, 2], 0.0, 1.0, &mut rng);
        let loss = |t: &Tensor| avg_pool2d(t, 2, 2).unwrap().mul(&weights).unwrap().sum();
        let gi = avg_pool2d_backward(&weights, x.dims(), 2, 2).unwrap();
        let eps = 1e-2;
        for idx in [0usize, 10, 31] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((num - gi.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn global_avg_pool_reduces_spatial_dims() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let pooled = global_avg_pool2d(&x).unwrap();
        assert_eq!(pooled.dims(), &[1, 2]);
        assert_eq!(pooled.as_slice(), &[1.5, 5.5]);
    }

    #[test]
    fn pooling_rejects_bad_windows() {
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(max_pool2d(&x, 4, 1).is_err());
        assert!(max_pool2d(&x, 2, 0).is_err());
        assert!(avg_pool2d(&x, 0, 1).is_err());
    }

    #[test]
    fn pooling_rejects_non_rank4_inputs() {
        let x = Tensor::zeros(&[3, 3]);
        assert!(max_pool2d(&x, 2, 2).is_err());
        assert!(avg_pool2d(&x, 2, 2).is_err());
        assert!(global_avg_pool2d(&x).is_err());
    }
}
