//! Shape bookkeeping: dimension lists, element counts and index arithmetic.

use crate::error::{Result, TensorError};

/// Maximum number of axes a [`Shape`] can hold.
///
/// Everything in this workspace is at most rank 4 (NCHW feature maps); the
/// two spare slots are headroom. The bound is what lets `Shape` store its
/// dimensions inline — constructing a tensor performs **no heap
/// allocation** for its shape, which the zero-allocation inference runtime
/// relies on (a `Vec<usize>`-backed shape would put one malloc back into
/// every planned layer output).
pub const MAX_RANK: usize = 6;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// `Shape` stores up to [`MAX_RANK`] dimensions inline (no heap allocation)
/// and centralises the index arithmetic every operation needs: element
/// counts, row-major strides, flat-index computation.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::Shape;
///
/// let shape = Shape::new(&[2, 3, 4]);
/// assert_eq!(shape.len(), 24);
/// assert_eq!(shape.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    // Unused slots are always zero, so the derived equality/hash (which
    // also cover `rank`) behave exactly like the old Vec-backed shape.
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_RANK`] dimensions are given.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "Shape supports at most {MAX_RANK} axes, got {}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Self {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// Creates the shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Self {
            dims: [0; MAX_RANK],
            rank: 0,
        }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Returns the size of the given axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims()
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Flattens a multi-dimensional index into a row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the index has the wrong rank,
    /// or [`TensorError::AxisOutOfRange`] if any coordinate exceeds its axis.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "flat_index",
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut offset = 0;
        let strides = self.strides();
        for (axis, (&coord, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            if coord >= self.dims[axis] {
                return Err(TensorError::AxisOutOfRange {
                    axis: coord,
                    rank: self.dims[axis],
                });
            }
            offset += coord * stride;
        }
        Ok(offset)
    }
}

impl From<&[usize]> for Shape {
    /// See [`Shape::new`] — panics past [`MAX_RANK`] axes.
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    /// See [`Shape::new`] — panics past [`MAX_RANK`] axes.
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_count_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[5]).len(), 5);
        assert_eq!(Shape::scalar().len(), 1);
    }

    #[test]
    fn zero_dim_makes_shape_empty() {
        assert!(Shape::new(&[2, 0, 3]).is_empty());
        assert!(!Shape::new(&[2, 3]).is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn flat_index_matches_manual_computation() {
        let shape = Shape::new(&[2, 3, 4]);
        assert_eq!(shape.flat_index(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(shape.flat_index(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(shape.flat_index(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn flat_index_rejects_out_of_range_coordinates() {
        let shape = Shape::new(&[2, 3]);
        assert!(shape.flat_index(&[2, 0]).is_err());
        assert!(shape.flat_index(&[0, 0, 0]).is_err());
    }

    #[test]
    fn dim_accessor_checks_bounds() {
        let shape = Shape::new(&[4, 5]);
        assert_eq!(shape.dim(1).unwrap(), 5);
        assert!(shape.dim(2).is_err());
    }

    #[test]
    fn display_shows_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn ranks_disambiguate_trailing_zero_dims() {
        // [2] and [2, 0] share the same inline storage; rank keeps them
        // distinct under the derived equality.
        assert_ne!(Shape::new(&[2]), Shape::new(&[2, 0]));
        assert_eq!(Shape::new(&[2, 3]), Shape::new(&[2, 3]));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_more_than_max_rank_axes() {
        let _ = Shape::new(&[1; MAX_RANK + 1]);
    }
}
