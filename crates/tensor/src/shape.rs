//! Shape bookkeeping: dimension lists, element counts and index arithmetic.

use crate::error::{Result, TensorError};

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that centralises the index
/// arithmetic every operation needs (element counts, row-major strides,
/// flat-index computation) and keeps validation in one place.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::Shape;
///
/// let shape = Shape::new(&[2, 3, 4]);
/// assert_eq!(shape.len(), 24);
/// assert_eq!(shape.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Creates the shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Returns the size of the given axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Flattens a multi-dimensional index into a row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the index has the wrong rank,
    /// or [`TensorError::AxisOutOfRange`] if any coordinate exceeds its axis.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "flat_index",
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut offset = 0;
        let strides = self.strides();
        for (axis, (&coord, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            if coord >= self.dims[axis] {
                return Err(TensorError::AxisOutOfRange {
                    axis: coord,
                    rank: self.dims[axis],
                });
            }
            offset += coord * stride;
        }
        Ok(offset)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_count_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[5]).len(), 5);
        assert_eq!(Shape::scalar().len(), 1);
    }

    #[test]
    fn zero_dim_makes_shape_empty() {
        assert!(Shape::new(&[2, 0, 3]).is_empty());
        assert!(!Shape::new(&[2, 3]).is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn flat_index_matches_manual_computation() {
        let shape = Shape::new(&[2, 3, 4]);
        assert_eq!(shape.flat_index(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(shape.flat_index(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(shape.flat_index(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn flat_index_rejects_out_of_range_coordinates() {
        let shape = Shape::new(&[2, 3]);
        assert!(shape.flat_index(&[2, 0]).is_err());
        assert!(shape.flat_index(&[0, 0, 0]).is_err());
    }

    #[test]
    fn dim_accessor_checks_bounds() {
        let shape = Shape::new(&[4, 5]);
        assert_eq!(shape.dim(1).unwrap(), 5);
        assert!(shape.dim(2).is_err());
    }

    #[test]
    fn display_shows_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }
}
