//! Dense tensor primitives for the MTL-Split reproduction.
//!
//! This crate provides the numerical substrate used by every other crate in
//! the workspace: a row-major, heap-allocated `f32` [`Tensor`] with the
//! operations a small convolutional multi-task network needs — element-wise
//! arithmetic, broadcasting over the leading (batch) axis, matrix
//! multiplication, im2col-based 2-D convolution, pooling and reductions.
//!
//! The design goal is *clarity and determinism* rather than peak throughput:
//! the paper's claims are about relative accuracy between single-task and
//! multi-task training and about the structural sizes of the split network,
//! so a straightforward, well-tested CPU implementation is the right
//! substrate.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use mtlsplit_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod conv;
mod error;
mod ops;
mod pool;
mod rng;
mod shape;
mod tensor;

pub use conv::{col2im, conv2d, conv2d_backward, conv2d_im2col, im2col, Conv2dSpec};
pub use error::{Result, TensorError};
pub use ops::{log_softmax_rows, softmax_rows};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool2d, max_pool2d, max_pool2d_backward,
    max_pool2d_infer,
};
pub use rng::StdRng;
pub use shape::Shape;
pub use tensor::Tensor;
