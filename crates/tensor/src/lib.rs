//! Dense tensor primitives for the MTL-Split reproduction.
//!
//! This crate provides the numerical substrate used by every other crate in
//! the workspace: a row-major, heap-allocated `f32` [`Tensor`] with the
//! operations a small convolutional multi-task network needs — element-wise
//! arithmetic, broadcasting over the leading (batch) axis, matrix
//! multiplication, im2col-based 2-D convolution, pooling and reductions.
//!
//! # The compute-kernel layer
//!
//! Every forward and backward pass in the workspace bottoms out in one
//! kernel: the packed, cache-blocked [`sgemm`]. [`Tensor::matmul`] is a
//! thin shape-checked wrapper over it; dense, grouped and depthwise
//! [`conv2d`] (and [`conv2d_backward`]) are grouped im2col/col2im lowerings
//! onto it; the `mtlsplit-nn` linear layer drives it directly with
//! transpose flags so no pass materialises a transposed copy.
//!
//! ## The GEMM contract
//!
//! `sgemm(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, par)` computes
//! `C = alpha * op(A) * op(B) + beta * C` with these guarantees:
//!
//! * **Fixed accumulation chain.** Every output element is produced by one
//!   ascending-`k` accumulation chain, `beta`-scaled initial value first
//!   (`beta == 0` ignores — never multiplies — the prior contents of `C`).
//! * **Thread-count invariance.** [`Parallelism`] only partitions *rows of
//!   `C`* across `std::thread::scope` workers; each element is written by
//!   exactly one thread running exactly the chain above, so results are
//!   bit-identical for every thread count. The same argument covers the
//!   convolution drivers, which parallelise over `(batch, group)` output
//!   units.
//! * **Oracle equality.** For `alpha == 1, beta == 0` the result is
//!   bit-identical (0 ULP) to the naive triple loop, enforced by property
//!   tests against the `#[cfg(test)]` oracle kept in `kernels.rs`.
//!
//! * **ISA invariance.** The GEMM core is selected at runtime from
//!   explicitly vectorised micro-kernels (scalar, AVX2+FMA, AVX-512 — see
//!   [`Isa`]). Every path evaluates the same per-element accumulation
//!   chain, and on hardware with FMA every path (the scalar one included,
//!   via [`fused_mul_add`]) accumulates with the same correctly-rounded
//!   fused multiply-add — so on a given machine all dispatch paths produce
//!   bit-identical results. `MTLSPLIT_FORCE_ISA=scalar|avx2|avx512` pins a
//!   path process-wide; [`Isa::with`] pins one for a closure. Across
//!   *machines* with different FMA availability, results may differ by
//!   normal rounding.
//!
//! Kernels with no explicit configuration read the calling thread's ambient
//! [`Parallelism::current`] (default: one thread per core); training and
//! serving install their configured budgets via [`Parallelism::make_current`].
//! A per-ISA FLOP threshold caps the worker count — the faster the dispatch
//! path, the more multiply-accumulates a problem must offer per thread — so
//! small problems never pay scoped-thread spawn cost; the cap only ever
//! reduces the thread count, never changes results.
//!
//! ## The epilogue contract
//!
//! [`sgemm_epilogue`] fuses a bias, an optional per-row batch-norm and an
//! optional activation ([`Epilogue`]`::{None, Bias, BiasRelu, BiasSigmoid,
//! BiasHardSigmoid, BiasHardSwish, BiasNorm}`) into the GEMM:
//!
//! * the **bias initialises** each element's accumulation chain (`acc =
//!   bias`, then the ascending-`k` adds) — the exact chain the bias-prefill
//!   + `beta == 1` idiom produced, so not a bit changes;
//! * the **batch-norm** of a [`Epilogue::BiasNorm`] epilogue
//!   ([`ChannelNorm`], one statistics row per output row) and the
//!   **activation** are applied exactly once, in that order, in the final
//!   `K` block's register write-back — each evaluating the same scalar
//!   expression as the standalone `BatchNorm2d`/activation layers.
//!
//! Fused passes are therefore bit-identical to the unfused
//! GEMM-then-norm-then-activation chains for every thread count, while
//! skipping the separate norm and activation sweeps over the output. Any
//! non-`None` epilogue requires `beta == 0`.
//!
//! # Zero-allocation inference
//!
//! [`TensorArena`] is a recycling buffer pool: planned inference paths take
//! output buffers from it and return finished intermediates to it, so the
//! steady-state forward pass performs no heap allocation. [`conv2d_fused`]
//! and the `*_into` pooling kernels write into such caller-provided buffers;
//! internal scratch (GEMM packing, im2col columns) is thread-local and
//! reused across calls.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use mtlsplit_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod arena;
mod conv;
mod error;
mod kernels;
mod ops;
mod parallel;
mod pool;
mod rng;
mod shape;
// The SIMD layer is the one part of the crate allowed to use `unsafe`: the
// intrinsic calls live in `simd::x86` behind `#[target_feature]` wrappers
// whose safe entry points re-check CPU support.
#[allow(unsafe_code)]
mod simd;
mod tensor;

pub use arena::TensorArena;
pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_backward_into, conv2d_backward_params_into,
    conv2d_cols_len, conv2d_fused, conv2d_fused_caching, conv2d_im2col, im2col, Conv2dSpec,
    ConvFusion,
};
pub use error::{Result, TensorError};
pub use kernels::{
    fused_mul_add, sgemm, sgemm_epilogue, ActivationGrad, Bias, BiasAxis, ChannelNorm, Epilogue,
    EpilogueActivation, GradMask, NormParams, FUSED_MULTIPLY_ADD, MR, NR,
};
pub use ops::{log_softmax_rows, log_softmax_rows_into, softmax_rows};
pub use parallel::Parallelism;
pub use pool::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_backward_into, avg_pool2d_into, global_avg_pool2d,
    global_avg_pool2d_into, max_pool2d, max_pool2d_backward, max_pool2d_backward_into,
    max_pool2d_infer, max_pool2d_infer_into, max_pool2d_train_into, pooled_dims,
};
pub use rng::StdRng;
pub use shape::{Shape, MAX_RANK};
pub use simd::{active_isa, fma_available, resolve_isa, Isa};
pub use tensor::Tensor;
