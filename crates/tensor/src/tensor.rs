//! The dense `f32` tensor type and its core operations.

use crate::error::{Result, TensorError};
use crate::rng::StdRng;
use crate::shape::Shape;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout the workspace:
/// network inputs, weights, activations, gradients and the transmitted split
/// representation `Z_b` are all `Tensor`s. Data is always stored contiguously
/// in row-major order, which keeps the implementation simple and makes
/// serialization for the simulated network channel trivial.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// use mtlsplit_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// let sums = x.sum_axis0()?;
/// assert_eq!(sums.as_slice(), &[5.0, 7.0, 9.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the element count implied by `dims`.
    ///
    /// # Panics
    ///
    /// Like every constructor taking `dims`, panics past
    /// [`crate::MAX_RANK`] axes (shapes are stored inline so tensor
    /// construction never heap-allocates).
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor with samples from a normal distribution.
    pub fn randn(dims: &[usize], mean: f32, std_dev: f32, rng: &mut StdRng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len())
            .map(|_| rng.normal_with(mean, std_dev))
            .collect();
        Self { shape, data }
    }

    /// Creates a tensor with samples drawn uniformly from `[low, high)`.
    pub fn rand_uniform(dims: &[usize], low: f32, high: f32, rng: &mut StdRng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len())
            .map(|_| rng.uniform_range(low, high))
            .collect();
        Self { shape, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads a single element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Writes a single element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the tensor has more than
    /// one element.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(TensorError::LengthMismatch {
                expected: 1,
                actual: self.data.len(),
            });
        }
        Ok(self.data[0])
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: shape.len(),
            });
        }
        Ok(Self {
            shape,
            data: self.data.clone(),
        })
    }

    /// Flattens to `[batch, features]`, keeping the leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn flatten_batch(&self) -> Result<Self> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "flatten_batch",
                expected: 1,
                actual: 0,
            });
        }
        let batch = self.dims()[0];
        let features = self.len().checked_div(batch).unwrap_or(0);
        self.reshape(&[batch, features])
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = Self::zeros(&[cols, rows]);
        for r in 0..rows {
            for c in 0..cols {
                out.data[c * rows + r] = self.data[r * cols + c];
            }
        }
        Ok(out)
    }

    /// Extracts row `index` from a rank-2 tensor as a `[cols]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or out-of-range rows.
    pub fn row(&self, index: usize) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if index >= rows {
            return Err(TensorError::AxisOutOfRange {
                axis: index,
                rank: rows,
            });
        }
        Ok(Self {
            shape: Shape::new(&[cols]),
            data: self.data[index * cols..(index + 1) * cols].to_vec(),
        })
    }

    /// Selects a contiguous range of entries along the leading (batch) axis.
    ///
    /// # Errors
    ///
    /// Returns an error if the range exceeds the leading dimension or the
    /// tensor is rank 0.
    pub fn slice_batch(&self, start: usize, end: usize) -> Result<Self> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "slice_batch",
                expected: 1,
                actual: 0,
            });
        }
        let batch = self.dims()[0];
        if start > end || end > batch {
            return Err(TensorError::InvalidWindow {
                reason: format!("batch slice {start}..{end} out of range for batch {batch}"),
            });
        }
        let per_item = self.len().checked_div(batch).unwrap_or(0);
        let mut dims = self.dims().to_vec();
        dims[0] = end - start;
        Ok(Self {
            shape: Shape::new(&dims),
            data: self.data[start * per_item..end * per_item].to_vec(),
        })
    }

    /// Gathers the given indices along the leading (batch) axis.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range or the tensor is rank 0.
    pub fn gather_batch(&self, indices: &[usize]) -> Result<Self> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "gather_batch",
                expected: 1,
                actual: 0,
            });
        }
        let batch = self.dims()[0];
        let per_item = self.len().checked_div(batch).unwrap_or(0);
        let mut data = Vec::with_capacity(indices.len() * per_item);
        for &i in indices {
            if i >= batch {
                return Err(TensorError::AxisOutOfRange {
                    axis: i,
                    rank: batch,
                });
            }
            data.extend_from_slice(&self.data[i * per_item..(i + 1) * per_item]);
        }
        let mut dims = self.dims().to_vec();
        dims[0] = indices.len();
        Ok(Self {
            shape: Shape::new(&dims),
            data,
        })
    }

    /// Concatenates tensors along the leading (batch) axis.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or trailing dimensions differ.
    pub fn concat_batch(parts: &[&Tensor]) -> Result<Self> {
        let first = parts
            .first()
            .ok_or(TensorError::EmptyTensor { op: "concat_batch" })?;
        let trailing = &first.dims()[1..];
        let mut batch = 0;
        let mut data = Vec::new();
        for part in parts {
            if part.rank() == 0 || &part.dims()[1..] != trailing {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_batch",
                    lhs: first.dims().to_vec(),
                    rhs: part.dims().to_vec(),
                });
            }
            batch += part.dims()[0];
            data.extend_from_slice(&part.data);
        }
        let mut dims = first.dims().to_vec();
        dims[0] = batch;
        Ok(Self {
            shape: Shape::new(&dims),
            data,
        })
    }

    // ------------------------------------------------------------------
    // Element-wise operations
    // ------------------------------------------------------------------

    /// Applies a function to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise quotient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.zip(other, |a, b| a / b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Self {
        self.map(|x| x * factor)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, value: f32) -> Self {
        self.map(|x| x + value)
    }

    /// Accumulates `other * factor` into `self` (AXPY), in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, factor: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled_inplace",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += factor * b;
        }
        Ok(())
    }

    /// Adds a `[features]` vector to every row of a `[batch, features]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix or the vector length does
    /// not match the number of columns.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_row_broadcast",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if row.len() != cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.dims().to_vec(),
                rhs: row.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        for r in 0..rows {
            for c in 0..cols {
                out.data[r * cols + c] += row.data[c];
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// Computes `self [m, k] × other [k, n] -> [m, n]` on the packed,
    /// cache-blocked [`crate::sgemm`] kernel, parallelised according to the
    /// calling thread's ambient [`crate::Parallelism`] setting. The result
    /// is bit-identical for every thread count (see the kernel docs for the
    /// determinism contract).
    ///
    /// # Errors
    ///
    /// Returns an error if either operand is not a matrix or the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Self> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::kernels::sgemm(
            false,
            false,
            m,
            n,
            k,
            1.0,
            &self.data,
            &other.data,
            0.0,
            &mut out,
            crate::parallel::Parallelism::current(),
        );
        Ok(Self {
            shape: Shape::new(&[m, n]),
            data: out,
        })
    }

    /// Dot product of two equally-sized tensors, treated as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for empty tensors.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
            .ok_or(TensorError::EmptyTensor { op: "max" })
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for empty tensors.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
            .ok_or(TensorError::EmptyTensor { op: "min" })
    }

    /// Sum of the squares of all elements (squared L2 norm).
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Column-wise sum of a `[rows, cols]` matrix, producing `[cols]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_axis0(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_axis0",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for (c, slot) in out.iter_mut().enumerate() {
                *slot += self.data[r * cols + c];
            }
        }
        Ok(Self {
            shape: Shape::new(&[cols]),
            data: out,
        })
    }

    /// Column-wise mean of a `[rows, cols]` matrix, producing `[cols]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn mean_axis0(&self) -> Result<Self> {
        let rows = self.dims().first().copied().unwrap_or(0).max(1) as f32;
        Ok(self.sum_axis0()?.scale(1.0 / rows))
    }

    /// Index of the maximum element in each row of a `[rows, cols]` matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or matrices with zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if cols == 0 {
            return Err(TensorError::EmptyTensor { op: "argmax_rows" });
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (c, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = c;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Returns `true` when every element differs from `other` by at most
    /// `tolerance`.
    pub fn allclose(&self, other: &Tensor, tolerance: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tolerance)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} {:?}", self.shape, &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let id = Tensor::eye(3);
        let y = x.matmul(&id).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_rejects_non_matrices() {
        let a = Tensor::zeros(&[2, 3, 4]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_swaps_axes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = a.reshape(&[4]).unwrap();
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[3]).is_err());
    }

    #[test]
    fn flatten_batch_keeps_leading_axis() {
        let a = Tensor::zeros(&[4, 3, 2, 2]);
        let f = a.flatten_batch().unwrap();
        assert_eq!(f.dims(), &[4, 12]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn elementwise_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        a.add_scaled_inplace(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_every_row() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let bias = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let y = x.add_row_broadcast(&bias).unwrap();
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(x.sum(), 6.0);
        assert_eq!(x.mean(), 1.5);
        assert_eq!(x.max().unwrap(), 4.0);
        assert_eq!(x.min().unwrap(), -2.0);
        assert_eq!(x.squared_norm(), 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn axis0_reductions() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(x.sum_axis0().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(x.mean_axis0().unwrap().as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn argmax_rows_finds_per_row_maximum() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        assert_eq!(x.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn row_and_slice_batch() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        assert_eq!(x.row(1).unwrap().as_slice(), &[3.0, 4.0]);
        let s = x.slice_batch(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[3.0, 4.0, 5.0, 6.0]);
        assert!(x.slice_batch(2, 4).is_err());
    }

    #[test]
    fn gather_batch_reorders_rows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        let g = x.gather_batch(&[2, 0]).unwrap();
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        assert!(x.gather_batch(&[3]).is_err());
    }

    #[test]
    fn concat_batch_stacks_along_leading_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = Tensor::concat_batch(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_batch_rejects_mismatched_trailing_dims() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(Tensor::concat_batch(&[&a, &b]).is_err());
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut x = Tensor::zeros(&[2, 3]);
        x.set(&[1, 2], 7.0).unwrap();
        assert_eq!(x.at(&[1, 2]).unwrap(), 7.0);
        assert!(x.at(&[2, 0]).is_err());
    }

    #[test]
    fn item_requires_single_element() {
        assert_eq!(Tensor::scalar(3.0).item().unwrap(), 3.0);
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn randn_is_deterministic_for_a_seed() {
        let mut rng1 = StdRng::seed_from(11);
        let mut rng2 = StdRng::seed_from(11);
        let a = Tensor::randn(&[4, 4], 0.0, 1.0, &mut rng1);
        let b = Tensor::randn(&[4, 4], 0.0, 1.0, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0005, 1.9995], &[2]).unwrap();
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
    }
}
