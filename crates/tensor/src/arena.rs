//! A reusable buffer arena for zero-allocation steady-state inference.
//!
//! Every inference request through the allocating [`Layer::infer`] path of
//! `mtlsplit-nn` heap-allocates one output buffer per layer and frees it one
//! layer later. [`TensorArena`] breaks that cycle: it keeps the backing
//! `Vec<f32>` of every finished intermediate and hands it back out for the
//! next one that fits, so after a warm-up request a whole forward pass is
//! served entirely from recycled memory — **zero allocations per request**
//! in steady state (asserted by `benches/inference.rs` in quick mode).
//!
//! The arena is a plain best-fit free list, not a lifetime-bound slab:
//! buffers taken from it are ordinary owned `Vec<f32>`s (wrapped in
//! [`Tensor`]s), so they can cross API boundaries freely and safe Rust's
//! aliasing rules are never bent. What makes the steady state allocation-free
//! is the take/recycle discipline, not pointer arithmetic:
//!
//! * [`TensorArena::take`] returns a buffer of exactly the requested length,
//!   reusing the smallest free buffer whose capacity fits (growing one only
//!   when nothing fits — that is the warm-up allocation).
//! * [`TensorArena::recycle`] / [`TensorArena::give`] return a finished
//!   tensor's storage to the free list.
//!
//! Buffers from [`TensorArena::take`] have *unspecified contents* (they hold
//! whatever the previous request left behind). Consumers must fully
//! overwrite them — every `infer_into` implementation in this workspace
//! does, and the property tests assert no stale values bleed between
//! requests.
//!
//! [`Layer::infer`]: ../mtlsplit_nn/trait.Layer.html

use crate::tensor::Tensor;
use mtlsplit_obs as obs;

/// A recycling pool of `f32` buffers backing planned, zero-allocation
/// inference.
///
/// The take/recycle contract: [`TensorArena::take`] hands out a buffer of
/// the requested length with **unspecified contents** (fully overwrite
/// it), reusing the smallest pooled buffer that fits; return finished
/// buffers with [`TensorArena::give`] / [`TensorArena::recycle`] so the
/// steady state allocates nothing.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::TensorArena;
///
/// let mut arena = TensorArena::new();
/// let first = arena.take(64); // warm-up: allocates
/// arena.give(first);
/// let second = arena.take(48); // steady state: reuses the 64-element buffer
/// assert_eq!(second.len(), 48);
/// assert_eq!(arena.fresh_allocations(), 1);
/// assert_eq!(arena.reuses(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TensorArena {
    free: Vec<Vec<f32>>,
    fresh_allocations: usize,
    reuses: usize,
    // Running total of pooled capacity, kept so the global high-water
    // gauge costs O(1) per give instead of a free-list sweep.
    pooled_total: usize,
}

impl TensorArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            // Give the free list itself room up front so pushing recycled
            // buffers does not reallocate it on the hot path.
            free: Vec::with_capacity(32),
            fresh_allocations: 0,
            reuses: 0,
            pooled_total: 0,
        }
    }

    /// Takes a buffer of exactly `len` elements with **unspecified
    /// contents** — the caller must overwrite every slot it exposes.
    ///
    /// Reuses the smallest free buffer whose capacity fits; allocates a
    /// fresh one only when nothing fits (counted in
    /// [`TensorArena::fresh_allocations`]).
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None;
        for (index, buffer) in self.free.iter().enumerate() {
            let capacity = buffer.capacity();
            if capacity >= len && best.is_none_or(|(_, c)| capacity < c) {
                best = Some((index, capacity));
            }
        }
        match best {
            Some((index, capacity)) => {
                self.reuses += 1;
                self.pooled_total -= capacity;
                obs::metrics::ARENA_HITS.add(1);
                let mut buffer = self.free.swap_remove(index);
                if buffer.len() > len {
                    buffer.truncate(len);
                } else {
                    // Within capacity: sets the length without reallocating.
                    buffer.resize(len, 0.0);
                }
                buffer
            }
            None => {
                self.fresh_allocations += 1;
                obs::metrics::ARENA_MISSES.add(1);
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the free list for later reuse.
    pub fn give(&mut self, buffer: Vec<f32>) {
        if buffer.capacity() > 0 {
            self.pooled_total += buffer.capacity();
            obs::metrics::ARENA_HIGH_WATER.observe(self.pooled_total as u64);
            self.free.push(buffer);
        }
    }

    /// Returns a finished tensor's storage to the free list.
    ///
    /// Only recycle tensors whose buffers came out of this arena (directly
    /// or through an `infer_into` pass): recycling externally-allocated
    /// tensors grows the pool without bound.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.give(tensor.into_vec());
    }

    /// Number of free buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Total `f32` elements of capacity currently pooled.
    pub fn pooled_elements(&self) -> usize {
        self.free.iter().map(Vec::capacity).sum()
    }

    /// How many [`TensorArena::take`] calls had to allocate fresh memory.
    ///
    /// In steady state this counter stops moving — that is the
    /// zero-allocation guarantee, machine-checked by the inference bench.
    pub fn fresh_allocations(&self) -> usize {
        self.fresh_allocations
    }

    /// How many [`TensorArena::take`] calls were served from the pool.
    pub fn reuses(&self) -> usize {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_prefers_the_smallest_fitting_buffer() {
        let mut arena = TensorArena::new();
        arena.give(vec![0.0; 100]);
        arena.give(vec![0.0; 10]);
        let buffer = arena.take(8);
        assert_eq!(buffer.len(), 8);
        assert_eq!(
            buffer.capacity(),
            10,
            "best fit must pick the 10-slot buffer"
        );
        assert_eq!(arena.pooled(), 1);
        assert_eq!(arena.reuses(), 1);
        assert_eq!(arena.fresh_allocations(), 0);
    }

    #[test]
    fn take_allocates_when_nothing_fits() {
        let mut arena = TensorArena::new();
        arena.give(vec![0.0; 4]);
        let buffer = arena.take(16);
        assert_eq!(buffer.len(), 16);
        assert_eq!(arena.fresh_allocations(), 1);
        assert_eq!(arena.pooled(), 1, "the too-small buffer stays pooled");
    }

    #[test]
    fn steady_state_take_give_cycle_stops_allocating() {
        let mut arena = TensorArena::new();
        // Warm-up request: three buffer sizes.
        for &len in &[64usize, 32, 16] {
            let buffer = arena.take(len);
            arena.give(buffer);
        }
        let warmup = arena.fresh_allocations();
        // Twenty steady-state requests over the same sizes, including one
        // that shrinks into a larger buffer.
        for _ in 0..20 {
            for &len in &[64usize, 30, 16] {
                let buffer = arena.take(len);
                assert_eq!(buffer.len(), len);
                arena.give(buffer);
            }
        }
        assert_eq!(
            arena.fresh_allocations(),
            warmup,
            "steady state must be allocation-free"
        );
    }

    #[test]
    fn recycle_round_trips_tensor_storage() {
        let mut arena = TensorArena::new();
        let tensor = Tensor::from_vec(arena.take(6), &[2, 3]).unwrap();
        arena.recycle(tensor);
        assert_eq!(arena.pooled(), 1);
        assert_eq!(arena.pooled_elements(), 6);
        let again = arena.take(6);
        assert_eq!(arena.fresh_allocations(), 1, "second take reuses");
        assert_eq!(again.len(), 6);
    }

    #[test]
    fn zero_length_buffers_are_not_pooled() {
        let mut arena = TensorArena::new();
        arena.give(Vec::new());
        assert_eq!(arena.pooled(), 0);
        let empty = arena.take(0);
        assert!(empty.is_empty());
    }
}
