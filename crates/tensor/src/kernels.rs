//! The packed, cache-blocked SGEMM every forward and backward pass runs on.
//!
//! # Design
//!
//! [`sgemm`] computes `C = alpha * op(A) * op(B) + beta * C` for row-major
//! `f32` matrices, following the classic three-level blocking scheme (as in
//! BLIS/GotoBLAS):
//!
//! * the `N` dimension is split into `NC`-wide column blocks,
//! * the `K` dimension into `KC`-deep slices — each `KC x NC` block of `B`
//!   is packed once into NR-wide column panels,
//! * the `M` dimension into `MC`-tall row blocks — each `MC x KC` block of
//!   `A` is packed into MR-tall row panels (with `alpha` folded in),
//!
//! and a register-tiled `MR x NR` micro-kernel accumulates one output tile
//! over the whole `KC` slice without touching memory for `C` in its inner
//! loop. Packing both operands makes every micro-kernel read sequential,
//! keeps the working set inside the cache hierarchy, and handles the
//! transpose flags for free — callers never materialise a transposed copy.
//!
//! # Determinism contract
//!
//! Each output element `C[i][j]` is produced by exactly one accumulation
//! chain, in this exact order:
//!
//! ```text
//! acc = (beta == 0 ? 0 : beta * C[i][j])          // beta == 0 kills NaNs
//! for p in 0..k (ascending): acc += (alpha * A[i][p]) * B[p][j]
//! C[i][j] = acc
//! ```
//!
//! Cache blocking spills partial `acc` values to `C` between `KC` slices and
//! reloads them, which leaves the chain order unchanged; multi-threading
//! partitions *rows of `C`* only, so every element is written by exactly one
//! thread running exactly this chain. Results are therefore **bit-identical
//! for every thread count and every blocking configuration**, and for
//! `alpha == 1, beta == 0` they are bit-identical to the textbook naive
//! triple loop (the `#[cfg(test)]` oracle below enforces this to 0 ULP).
//!
//! # Fused epilogues
//!
//! [`sgemm_epilogue`] extends the kernel with a fused [`Epilogue`]: a bias
//! that *initialises* each accumulation chain (internally a `C` prefill
//! accumulated through `beta == 1` — the classic idiom, so the chain is
//! unchanged; on the `m == 1` GEMV path the bias is a true register init),
//! an optional per-row batch-norm, and an optional activation — the latter
//! two applied once in the final `K` block's write-back while the tile is
//! still in registers. Fusing removes the separate norm and activation
//! passes over `C` without perturbing a single bit — see [`Epilogue`] for
//! the full contract.

use crate::parallel::{partition_rows, threads_for_macs, Parallelism};
use crate::simd::Kernels;
use mtlsplit_obs as obs;

/// Rows of the scalar path's register tile (micro-panel height of packed
/// `A`). The SIMD dispatch paths use their own tile heights — see
/// [`crate::Isa`].
pub const MR: usize = 4;
/// Columns of the scalar path's register tile (micro-panel width of packed
/// `B`).
///
/// The `4 x 24` tile is tuned for 256-bit SIMD autovectorisation: twelve
/// independent 8-wide accumulator chains (enough to cover FMA latency at
/// two issues per cycle) fed by three packed-`B` loads and four packed-`A`
/// broadcasts per step, which keeps the load ports well under the FMA
/// issue rate while filling the 16-register file.
pub const NR: usize = 24;
/// Row-block size of the scalar path: `MC x KC` panels of `A` are packed to
/// stay cache-hot. The SIMD paths carry their own `mr`-aligned row-block
/// size in the dispatch table.
pub(crate) const MC: usize = 128;
/// Depth-block size: the shared `K` dimension is consumed `KC` at a time
/// (shared by every dispatch path).
const KC: usize = 256;
/// Column-block size: `KC x NC` panels of `B` are packed per depth block
/// (shared by every dispatch path).
const NC: usize = 512;

/// Whether this *build* accumulates with hardware fused multiply-add
/// unconditionally (x86-64 compiled with the `fma` target feature, or any
/// aarch64 target).
///
/// When this is `false` the kernels still use the hardware FMA unit if
/// runtime detection finds one — see [`fused_mul_add`] and
/// [`crate::fma_available`] — so a portable build and a
/// `target-cpu=native` build produce identical bits on the same machine.
pub const FUSED_MULTIPLY_ADD: bool = cfg!(any(target_feature = "fma", target_arch = "aarch64"));

/// The single accumulation step `acc + a * b` used by every kernel in this
/// crate.
///
/// The operation is a correctly-rounded fused multiply-add exactly when the
/// machine has one, regardless of how the binary was compiled:
///
/// * builds targeting hardware FMA ([`FUSED_MULTIPLY_ADD`]) use
///   `f32::mul_add` — one instruction, one rounding, the form LLVM
///   vectorises to `vfmadd`;
/// * portable builds on FMA hardware route through a one-off
///   `#[target_feature(enable = "fma")]` helper — the same instruction,
///   the same single rounding, so the same bits;
/// * machines without an FMA unit use the plain two-rounding
///   `acc + a * b`.
///
/// Within one machine every accumulation chain therefore uses exactly one
/// of the two semantics, which is what keeps all dispatch paths (scalar,
/// AVX2, AVX-512), the test oracle, and every vendored baseline bitwise
/// identical to each other for every thread count.
#[inline(always)]
pub fn fused_mul_add(a: f32, b: f32, acc: f32) -> f32 {
    if FUSED_MULTIPLY_ADD {
        a.mul_add(b, acc)
    } else if crate::simd::fma_available() {
        crate::simd::fma_single(a, b, acc)
    } else {
        acc + a * b
    }
}

/// The compile-time-selected accumulation step for kernel bodies that are
/// instantiated twice: once plainly (`FMA` = [`FUSED_MULTIPLY_ADD`]) and
/// once inside a `#[target_feature(enable = "fma")]` wrapper (`FMA` =
/// `true`), where the `mul_add` inlines to a hardware `vfmadd` and the
/// surrounding loops autovectorise. Keeping the choice a const generic —
/// rather than the runtime branch in [`fused_mul_add`] — is what lets LLVM
/// vectorise the accumulator tile.
#[inline(always)]
pub(crate) fn fma_step<const FMA: bool>(a: f32, b: f32, acc: f32) -> f32 {
    if FMA {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// The activation component of a fused [`Epilogue`], applied element-wise in
/// the micro-kernel's final write-back while the output tile is still in
/// registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpilogueActivation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hard sigmoid, `clamp((x + 3) / 6, 0, 1)`.
    HardSigmoid,
    /// Hard swish, `x * hard_sigmoid(x)`.
    HardSwish,
}

#[inline(always)]
fn hard_sigmoid(x: f32) -> f32 {
    ((x + 3.0) / 6.0).clamp(0.0, 1.0)
}

impl EpilogueActivation {
    /// Applies the activation to one value.
    ///
    /// This is byte-for-byte the same scalar expression the standalone
    /// activation layers evaluate, so a fused pass and an unfused
    /// GEMM-then-activation pass produce bit-identical outputs within one
    /// build.
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            EpilogueActivation::Relu => x.max(0.0),
            EpilogueActivation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            EpilogueActivation::HardSigmoid => hard_sigmoid(x),
            EpilogueActivation::HardSwish => x * hard_sigmoid(x),
        }
    }
}

/// The derivative of an [`EpilogueActivation`], evaluated at the forward
/// input — the factor a training-time backward pass multiplies the incoming
/// gradient by.
///
/// Like [`EpilogueActivation::apply`], each arm is byte-for-byte the scalar
/// expression the standalone activation layers' backward passes evaluate, so
/// folding the mask into a GEMM write-back (see [`Epilogue::Mask`]) changes
/// no bits relative to the separate derivative-then-multiply passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationGrad {
    /// `1` where the input was positive, `0` elsewhere.
    Relu,
    /// `s(x) * (1 - s(x))` for the logistic sigmoid `s`.
    Sigmoid,
    /// `1/6` on the linear ramp of the hard sigmoid, `0` outside.
    HardSigmoid,
    /// The piecewise-linear hard-swish derivative.
    HardSwish,
}

impl ActivationGrad {
    /// Evaluates the derivative at one forward-input value.
    #[inline(always)]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            ActivationGrad::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationGrad::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            ActivationGrad::HardSigmoid => {
                if x > -3.0 && x < 3.0 {
                    1.0 / 6.0
                } else {
                    0.0
                }
            }
            ActivationGrad::HardSwish => {
                if x <= -3.0 {
                    0.0
                } else if x >= 3.0 {
                    1.0
                } else {
                    (2.0 * x + 3.0) / 6.0
                }
            }
        }
    }
}

impl EpilogueActivation {
    /// The derivative that masks this activation's gradient in a backward
    /// pass.
    pub fn grad(self) -> ActivationGrad {
        match self {
            EpilogueActivation::Relu => ActivationGrad::Relu,
            EpilogueActivation::Sigmoid => ActivationGrad::Sigmoid,
            EpilogueActivation::HardSigmoid => ActivationGrad::HardSigmoid,
            EpilogueActivation::HardSwish => ActivationGrad::HardSwish,
        }
    }
}

/// An activation-gradient mask fused into a backward GEMM's write-back.
///
/// `input` is the activation layer's cached *forward input*, laid out
/// exactly like the GEMM output `C` (`m x n`, row-major): each written
/// element becomes `acc * grad.derivative(input[same position])`, which is
/// bit-identical to running the GEMM unfused and then the standalone
/// derivative-then-multiply activation backward pass over its result.
#[derive(Debug, Clone, Copy)]
pub struct GradMask<'a> {
    /// The forward input of the activation being differentiated, aligned
    /// element-for-element with the GEMM output.
    pub input: &'a [f32],
    /// Which activation's derivative to evaluate.
    pub grad: ActivationGrad,
}

/// One channel's hoisted normalisation constants — see
/// [`ChannelNorm::params`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NormParams {
    /// Learned scale.
    pub gamma: f32,
    /// Running mean.
    pub mean: f32,
    /// `1 / sqrt(var + epsilon)`.
    pub inv: f32,
    /// Learned shift.
    pub beta: f32,
}

impl NormParams {
    /// Applies the normalisation — the exact `BatchNorm2d` inference
    /// expression.
    #[inline(always)]
    pub fn transform(self, x: f32) -> f32 {
        self.gamma * (x - self.mean) * self.inv + self.beta
    }
}

/// Per-channel batch-normalisation statistics fused into a GEMM epilogue.
///
/// [`ChannelNorm::apply`] evaluates exactly the inference-mode batch-norm
/// expression — `gamma * (x - mean) / sqrt(var + epsilon) + beta` with the
/// same operation order as the standalone `BatchNorm2d` pass — so fusing a
/// following batch-norm layer into the convolution's write-back changes no
/// bits, only removes a full read+write pass over the feature map.
#[derive(Debug, Clone, Copy)]
pub struct ChannelNorm<'a> {
    /// Learned per-channel scale.
    pub gamma: &'a [f32],
    /// Learned per-channel shift.
    pub beta: &'a [f32],
    /// Running per-channel mean.
    pub mean: &'a [f32],
    /// Running per-channel variance.
    pub var: &'a [f32],
    /// Variance stabiliser.
    pub epsilon: f32,
}

impl ChannelNorm<'_> {
    /// Normalises one value of `channel`.
    #[inline(always)]
    pub fn apply(&self, channel: usize, x: f32) -> f32 {
        self.params(channel).transform(x)
    }

    /// Hoists `channel`'s constants (including the `1 / sqrt(var + eps)`
    /// divide) out of an element loop. Reusing the returned value is
    /// bit-identical to recomputing it — it is a pure function of the same
    /// inputs — while saving a square root and a division per element.
    #[inline(always)]
    pub fn params(&self, channel: usize) -> NormParams {
        NormParams {
            gamma: self.gamma[channel],
            mean: self.mean[channel],
            inv: 1.0 / (self.var[channel] + self.epsilon).sqrt(),
            beta: self.beta[channel],
        }
    }

    /// Number of channels covered.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Whether all four statistic slices cover exactly `channels` channels.
    pub fn covers(&self, channels: usize) -> bool {
        self.gamma.len() == channels
            && self.beta.len() == channels
            && self.mean.len() == channels
            && self.var.len() == channels
    }
}

/// Which axis of `C` a fused bias broadcasts along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BiasAxis {
    /// One bias value per row of `C` (`values.len() == m`) — the convolution
    /// layout, where rows of a group's output are channels.
    Row,
    /// One bias value per column of `C` (`values.len() == n`) — the
    /// linear-layer layout, where columns are output features.
    Col,
}

/// A bias vector fused into a GEMM epilogue.
#[derive(Debug, Clone, Copy)]
pub struct Bias<'a> {
    /// The bias values: length `m` for [`BiasAxis::Row`], `n` for
    /// [`BiasAxis::Col`].
    pub values: &'a [f32],
    /// The axis the bias broadcasts along.
    pub axis: BiasAxis,
}

/// A transform fused into the GEMM's output write-back.
///
/// # Contract
///
/// The bias of a `Bias*` variant does **not** run after the accumulation: it
/// *initialises* each element's accumulation chain, exactly where the
/// `beta == 1` bias-prefill idiom it replaces put it:
///
/// ```text
/// acc = bias[broadcast]                            // instead of beta * C
/// for p in 0..k (ascending): acc += (alpha * A[i][p]) * B[p][j]
/// C[i][j] = activation(acc)                        // once, at the final store
/// ```
///
/// The activation is applied exactly once, in the final write-back of the
/// last `K` block, while the tile is still in registers. Both halves are
/// therefore **bit-identical** to the unfused reference (bias-prefilled
/// output + `beta == 1` GEMM + separate element-wise activation pass) for
/// every thread count — the chain per element is unchanged, only the number
/// of passes over memory shrinks.
///
/// A `Bias*` epilogue requires `beta == 0` (the prior contents of `C` have
/// no place in the chain above); [`sgemm_epilogue`] asserts this.
#[derive(Debug, Clone, Copy, Default)]
pub enum Epilogue<'a> {
    /// No fused transform: plain `C = alpha * op(A) * op(B) + beta * C`.
    #[default]
    None,
    /// Initialise each chain with a broadcast bias.
    Bias(Bias<'a>),
    /// Bias initialisation plus a fused ReLU in the write-back.
    BiasRelu(Bias<'a>),
    /// Bias initialisation plus a fused logistic sigmoid in the write-back.
    BiasSigmoid(Bias<'a>),
    /// Bias initialisation plus a fused hard sigmoid in the write-back.
    BiasHardSigmoid(Bias<'a>),
    /// Bias initialisation plus a fused hard swish in the write-back.
    BiasHardSwish(Bias<'a>),
    /// The convolution → batch-norm (→ activation) fusion: optional bias
    /// initialisation, per-*row* batch-norm statistics applied in the
    /// write-back, then an optional activation. The norm's statistic slices
    /// must cover `m` rows.
    BiasNorm {
        /// Chain-initialising bias, if the convolution has one.
        bias: Option<Bias<'a>>,
        /// The per-row (output-channel) normalisation statistics.
        norm: ChannelNorm<'a>,
        /// Activation applied after the normalisation, if fused.
        activation: Option<EpilogueActivation>,
    },
    /// The backward-pass fusion: each element of the final write-back is
    /// multiplied by the activation derivative evaluated at the cached
    /// forward input (see [`GradMask`]). Carries no bias, so the chain is
    /// `0, ascending-k accumulation, acc * derivative` — bit-identical to
    /// the unfused GEMM followed by the separate masking pass. Requires
    /// `beta == 0` and `input.len() == m * n`.
    Mask(GradMask<'a>),
}

impl<'a> Epilogue<'a> {
    /// Builds the epilogue for a bias plus an optional fused activation.
    pub fn with_activation(bias: Bias<'a>, activation: Option<EpilogueActivation>) -> Self {
        match activation {
            None => Epilogue::Bias(bias),
            Some(EpilogueActivation::Relu) => Epilogue::BiasRelu(bias),
            Some(EpilogueActivation::Sigmoid) => Epilogue::BiasSigmoid(bias),
            Some(EpilogueActivation::HardSigmoid) => Epilogue::BiasHardSigmoid(bias),
            Some(EpilogueActivation::HardSwish) => Epilogue::BiasHardSwish(bias),
        }
    }

    /// The fused bias, if any.
    pub(crate) fn bias(&self) -> Option<Bias<'a>> {
        match *self {
            Epilogue::None | Epilogue::Mask(_) => None,
            Epilogue::Bias(b)
            | Epilogue::BiasRelu(b)
            | Epilogue::BiasSigmoid(b)
            | Epilogue::BiasHardSigmoid(b)
            | Epilogue::BiasHardSwish(b) => Some(b),
            Epilogue::BiasNorm { bias, .. } => bias,
        }
    }

    /// The fused activation, if any.
    pub(crate) fn activation(&self) -> Option<EpilogueActivation> {
        match self {
            Epilogue::None | Epilogue::Bias(_) | Epilogue::Mask(_) => None,
            Epilogue::BiasRelu(_) => Some(EpilogueActivation::Relu),
            Epilogue::BiasSigmoid(_) => Some(EpilogueActivation::Sigmoid),
            Epilogue::BiasHardSigmoid(_) => Some(EpilogueActivation::HardSigmoid),
            Epilogue::BiasHardSwish(_) => Some(EpilogueActivation::HardSwish),
            Epilogue::BiasNorm { activation, .. } => *activation,
        }
    }

    /// The fused per-row normalisation, if any.
    pub(crate) fn norm(&self) -> Option<ChannelNorm<'a>> {
        match *self {
            Epilogue::BiasNorm { norm, .. } => Some(norm),
            _ => None,
        }
    }

    /// The fused backward gradient mask, if any.
    pub(crate) fn mask(&self) -> Option<GradMask<'a>> {
        match *self {
            Epilogue::Mask(mask) => Some(mask),
            _ => None,
        }
    }

    /// Whether this epilogue performs any fused transform at all.
    pub(crate) fn is_some(&self) -> bool {
        !matches!(self, Epilogue::None)
    }

    /// Narrows a [`Epilogue::Mask`] to the output rows `[row_start,
    /// row_end)` so each threaded worker indexes the mask with the same
    /// chunk-relative offsets it uses for its rows of `C`. Every other
    /// variant is returned unchanged (their per-row data is indexed by
    /// absolute row).
    fn narrow_mask_rows(self, row_start: usize, row_end: usize, n: usize) -> Self {
        match self {
            Epilogue::Mask(mask) => Epilogue::Mask(GradMask {
                input: &mask.input[row_start * n..row_end * n],
                grad: mask.grad,
            }),
            other => other,
        }
    }
}

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// All matrices are dense, row-major `f32` slices. `op(A)` is `m x k`: the
/// slice `a` stores it as `m x k` when `trans_a` is false and as `k x m`
/// (i.e. `op` reads it transposed) when true; likewise `op(B)` is `k x n`
/// stored as `k x n` or `n x k`. `C` is always `m x n`.
///
/// `par` bounds the worker-thread count; see the module docs for why the
/// result is bit-identical for every thread count. When `beta == 0` the
/// existing contents of `c` are ignored entirely (never multiplied), so an
/// uninitialised or NaN-filled buffer is safe.
///
/// # Panics
///
/// Panics if `a.len() != m * k`, `b.len() != k * n` or `c.len() != m * n`.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::{sgemm, Parallelism};
///
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = [5.0, 6.0, 7.0, 8.0]; // 2x2
/// let mut c = [0.0f32; 4];
/// sgemm(
///     false, false, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c,
///     Parallelism::single(),
/// );
/// assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    par: Parallelism,
) {
    sgemm_epilogue(
        trans_a,
        trans_b,
        m,
        n,
        k,
        alpha,
        a,
        b,
        beta,
        c,
        Epilogue::None,
        par,
    );
}

/// [`sgemm`] with a fused [`Epilogue`]: bias initialisation and an optional
/// activation applied inside the micro-kernel's write-back, saving the
/// separate bias-broadcast and activation passes over `C`.
///
/// See [`Epilogue`] for the exact contract — fused results are bit-identical
/// to the unfused bias-prefill + activation-pass reference for every thread
/// count.
///
/// # Panics
///
/// Panics on the same buffer mismatches as [`sgemm`], if a `Bias*` epilogue
/// is combined with `beta != 0`, or if the bias length does not match its
/// broadcast axis.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_epilogue(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
    par: Parallelism,
) {
    obs::metrics::GEMM_CALLS.add(1);
    obs::metrics::GEMM_FLOPS.add(2 * (m as u64) * (n as u64) * (k as u64));
    let _span = obs::span_dims(
        "sgemm",
        obs::SpanKind::Kernel,
        [m as u32, n as u32, k as u32, 0],
    );
    sgemm_epilogue_quiet(
        trans_a, trans_b, m, n, k, alpha, a, b, beta, c, epilogue, par,
    );
}

/// [`sgemm`] without the observability wrapper, for call sites that run on
/// short-lived scoped worker threads (the convolution unit loops): opening
/// spans there would register a throwaway ring buffer per spawned thread.
/// The enclosing driver accounts the work instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sgemm_quiet(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    par: Parallelism,
) {
    sgemm_epilogue_quiet(
        trans_a,
        trans_b,
        m,
        n,
        k,
        alpha,
        a,
        b,
        beta,
        c,
        Epilogue::None,
        par,
    );
}

/// [`sgemm_epilogue`] without the observability wrapper — see
/// [`sgemm_quiet`] for why the convolution unit loops need it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sgemm_epilogue_quiet(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
    par: Parallelism,
) {
    assert_eq!(a.len(), m * k, "sgemm: A buffer does not match m x k");
    assert_eq!(b.len(), k * n, "sgemm: B buffer does not match k x n");
    assert_eq!(c.len(), m * n, "sgemm: C buffer does not match m x n");
    if epilogue.is_some() {
        assert_eq!(beta, 0.0, "sgemm: a bias epilogue requires beta == 0");
    }
    if let Some(bias) = epilogue.bias() {
        let expected = match bias.axis {
            BiasAxis::Row => m,
            BiasAxis::Col => n,
        };
        assert_eq!(
            bias.values.len(),
            expected,
            "sgemm: bias length does not match its broadcast axis"
        );
    }
    if let Some(norm) = epilogue.norm() {
        assert!(
            norm.covers(m),
            "sgemm: norm statistics must cover every output row"
        );
    }
    if let Some(mask) = epilogue.mask() {
        assert_eq!(
            mask.input.len(),
            m * n,
            "sgemm: gradient mask must align with the m x n output"
        );
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        apply_degenerate_epilogue(c, n, beta, epilogue);
        return;
    }
    // Resolve the ISA dispatch table once per call and thread it down
    // explicitly — workers spawned below never re-resolve, so a pinned
    // `Isa::with` path covers the whole call.
    let kt = crate::simd::kernels();
    if m == 1 {
        // The batch-size-1 serving regime: packing B for a single output
        // row costs as much as the whole product, and the register tile
        // would idle most of its row lanes. The GEMV path runs the exact
        // same per-element chains without packing anything.
        (kt.gemv)(trans_b, n, k, alpha, a, b, beta, c, epilogue);
        return;
    }
    // The epilogue bias becomes the chain head by prefilling `C` and
    // accumulating through `beta == 1` — exactly the idiom the epilogue
    // API replaces, so the chain per element is unchanged. (Initialising
    // the accumulators from the bias inside the micro-kernel instead
    // defeats LLVM's scalar replacement of the accumulator tile and costs
    // ~2x; the prefill sweep is O(m*n) against the GEMM's O(m*n*k).)
    let beta = match epilogue.bias() {
        Some(bias) => {
            match bias.axis {
                BiasAxis::Row => {
                    for (row, &value) in c.chunks_mut(n).zip(bias.values) {
                        row.fill(value);
                    }
                }
                BiasAxis::Col => {
                    for row in c.chunks_mut(n) {
                        row.copy_from_slice(bias.values);
                    }
                }
            }
            1.0
        }
        None => beta,
    };
    let volume = m.saturating_mul(n).saturating_mul(k);
    let threads =
        threads_for_macs(par.resolve(), volume, kt.min_macs_per_thread).min(m.div_ceil(kt.mr));
    if threads <= 1 {
        gemm_rows(
            kt, 0, m, trans_a, trans_b, m, n, k, alpha, a, b, beta, c, epilogue, None,
        );
        return;
    }
    // Pack every (jc, pc) block of B once up front; the row-partition
    // workers all read the same shared panels instead of re-packing B per
    // thread. Block contents and iteration order are identical to the
    // serial path, so the accumulation chains are unchanged. The packing
    // buffer is thread-local and reused across calls, like the per-worker
    // scratch in `gemm_rows` — a deliberate trade of resident memory
    // (k * n floats, high-water-marked per calling thread) for an
    // allocation-free steady state; threaded large-GEMM callers are the
    // training loop, not the edge inference path.
    thread_local! {
        static SHARED_B: std::cell::RefCell<Vec<f32>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    SHARED_B.with(|cell| {
        let mut owned = cell.borrow_mut();
        let mut shared_len = 0;
        for jc in (0..n).step_by(NC) {
            shared_len += k * NC.min(n - jc).next_multiple_of(kt.nr);
        }
        if owned.len() < shared_len {
            owned.resize(shared_len, 0.0);
        }
        let mut offset = 0;
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let nc_pad = nc.next_multiple_of(kt.nr);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(
                    &mut owned[offset..offset + kc * nc_pad],
                    b,
                    trans_b,
                    k,
                    n,
                    pc,
                    jc,
                    kc,
                    nc,
                    kt.nr,
                );
                offset += kc * nc_pad;
            }
        }
        let shared_b = &owned[..shared_len];
        let ranges = partition_rows(m, threads, kt.mr);
        std::thread::scope(|scope| {
            let mut rest = c;
            let mut handles = Vec::new();
            for (index, range) in ranges.iter().enumerate() {
                let rows = range.end - range.start;
                let (chunk, tail) = rest.split_at_mut(rows * n);
                rest = tail;
                let (start, end) = (range.start, range.end);
                // A gradient mask is chunked alongside C so workers index it
                // chunk-relative; every other epilogue passes through.
                let worker_epilogue = epilogue.narrow_mask_rows(start, end, n);
                if index + 1 == ranges.len() {
                    // The caller works the final chunk itself.
                    gemm_rows(
                        kt,
                        start,
                        end,
                        trans_a,
                        trans_b,
                        m,
                        n,
                        k,
                        alpha,
                        a,
                        b,
                        beta,
                        chunk,
                        worker_epilogue,
                        Some(shared_b),
                    );
                } else {
                    handles.push(scope.spawn(move || {
                        gemm_rows(
                            kt,
                            start,
                            end,
                            trans_a,
                            trans_b,
                            m,
                            n,
                            k,
                            alpha,
                            a,
                            b,
                            beta,
                            chunk,
                            worker_epilogue,
                            Some(shared_b),
                        );
                    }));
                }
            }
            for handle in handles {
                handle.join().expect("sgemm worker thread panicked");
            }
        });
    });
}

/// Output chains per register block in the transposed-`B` GEMV.
const GEMV_LANES: usize = 8;

/// The scalar `m == 1` fast path: a matrix–vector product with no packing,
/// no register tile and no threads, preserving the exact per-element chain
/// — `chain head (bias or beta * C), then ascending-k accumulation with
/// [`fused_mul_add`], then norm/activation once` — so results are
/// bit-identical to the blocked path. The SIMD dispatch paths run the same
/// chains with vectorised lane loops (`simd::vec::gemv_kernel`).
///
/// For `trans_b == false` (`B` stored `k x n`) the accumulation sweeps
/// whole rows of `B`, contiguous over the outputs. For `trans_b == true`
/// (`B` stored `n x k`, the linear-layer layout) each output is one
/// contiguous dot-product row; [`GEMV_LANES`] independent chains run in
/// flight to cover the FMA latency.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemv_row(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemv_row_impl::<FUSED_MULTIPLY_ADD>(trans_b, n, k, alpha, a, b, beta, c, epilogue)
}

/// The body of [`gemv_row`], generic over the accumulation step so the
/// `x86` module can re-instantiate it inside a `#[target_feature]` wrapper
/// (see [`fma_step`]).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn gemv_row_impl<const FMA: bool>(
    trans_b: bool,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    // Chain heads land in `c` directly.
    match epilogue.bias() {
        Some(bias) => match bias.axis {
            BiasAxis::Row => c.fill(bias.values[0]),
            BiasAxis::Col => c.copy_from_slice(bias.values),
        },
        None => scale_c(c, beta),
    }
    if trans_b {
        // Full blocks: GEMV_LANES fixed-size independent chains, one
        // contiguous B row per lane, so the accumulators stay in registers
        // and the lane loop unrolls.
        let mut j = 0;
        while j + GEMV_LANES <= n {
            let rows: [&[f32]; GEMV_LANES] = std::array::from_fn(|lane| &b[(j + lane) * k..][..k]);
            let mut acc = [0.0f32; GEMV_LANES];
            for (lane, slot) in acc.iter_mut().enumerate() {
                *slot = c[j + lane];
            }
            for (p, &ap) in a.iter().enumerate() {
                let av = alpha * ap;
                for (lane, slot) in acc.iter_mut().enumerate() {
                    *slot = fma_step::<FMA>(av, rows[lane][p], *slot);
                }
            }
            for (lane, &value) in acc.iter().enumerate() {
                c[j + lane] = value;
            }
            j += GEMV_LANES;
        }
        // Tail: one scalar chain per remaining output.
        for (offset, slot) in c[j..].iter_mut().enumerate() {
            let row = &b[(j + offset) * k..][..k];
            let mut acc = *slot;
            for (p, &ap) in a.iter().enumerate() {
                acc = fma_step::<FMA>(alpha * ap, row[p], acc);
            }
            *slot = acc;
        }
    } else {
        for (p, &ap) in a.iter().enumerate() {
            let av = alpha * ap;
            let row = &b[p * n..][..n];
            for (slot, &bv) in c.iter_mut().zip(row) {
                *slot = fma_step::<FMA>(av, bv, *slot);
            }
        }
    }
    // The backward gradient mask: multiply each accumulated element by the
    // derivative at the cached forward input — the same `value * d(x)`
    // product the standalone masking pass computes.
    if let Some(mask) = epilogue.mask() {
        for (slot, &x) in c.iter_mut().zip(mask.input) {
            *slot *= mask.grad.derivative(x);
        }
        return;
    }
    // The fused transforms; the single row is channel 0 for a norm.
    let norm = epilogue.norm().map(|nm| nm.params(0));
    match (norm, epilogue.activation()) {
        (None, None) => {}
        (None, Some(act)) => {
            for x in c.iter_mut() {
                *x = act.apply(*x);
            }
        }
        (Some(params), None) => {
            for x in c.iter_mut() {
                *x = params.transform(*x);
            }
        }
        (Some(params), Some(act)) => {
            for x in c.iter_mut() {
                *x = act.apply(params.transform(*x));
            }
        }
    }
}

/// Handles the degenerate (`k == 0` or `alpha == 0`) cases: the chain per
/// element is just its initial value — `beta * C` without an epilogue,
/// `activation(norm(bias))` (with `0` standing in for a missing bias) with
/// one.
fn apply_degenerate_epilogue(c: &mut [f32], n: usize, beta: f32, epilogue: Epilogue<'_>) {
    if !epilogue.is_some() {
        scale_c(c, beta);
        return;
    }
    if let Some(mask) = epilogue.mask() {
        // No bias, so the chain head is 0; the mask still multiplies it,
        // preserving the sign-of-zero behaviour of the unfused pass.
        for (slot, &x) in c.iter_mut().zip(mask.input) {
            *slot = 0.0 * mask.grad.derivative(x);
        }
        return;
    }
    let act = epilogue.activation();
    let norm = epilogue.norm();
    let value = |row_index: usize, b: f32| {
        let normed = norm.map_or(b, |nm| nm.apply(row_index, b));
        act.map_or(normed, |a| a.apply(normed))
    };
    match epilogue.bias() {
        Some(bias) if bias.axis == BiasAxis::Col => {
            for (row_index, row) in c.chunks_mut(n).enumerate() {
                for (slot, &b) in row.iter_mut().zip(bias.values) {
                    *slot = value(row_index, b);
                }
            }
        }
        bias => {
            // Row-axis or missing bias: one value per row.
            for (row_index, row) in c.chunks_mut(n).enumerate() {
                let b = bias.map_or(0.0, |bv| bv.values[row_index]);
                row.fill(value(row_index, b));
            }
        }
    }
}

/// Applies the `beta` pre-scale used by the degenerate (`k == 0` or
/// `alpha == 0`) paths.
pub(crate) fn scale_c(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// Serial blocked GEMM over the row range `[row_start, row_end)` of `C`,
/// using the kernel set and tile geometry of the dispatch table `kt`.
///
/// `c_chunk` holds exactly those rows (`(row_end - row_start) * n` values);
/// `a` and `b` are the full operands. When `prepacked_b` is given it must
/// hold every `(jc, pc)` block of packed `B` in iteration order (the
/// threaded path shares one such buffer across workers); otherwise blocks
/// are packed on the fly into thread-local scratch. This is the unit of
/// work one thread executes — the blocking below never depends on which
/// rows the range covers beyond their packing, so the accumulation chain
/// per element is partition-independent.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    kt: &'static Kernels,
    row_start: usize,
    row_end: usize,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c_chunk: &mut [f32],
    epilogue: Epilogue<'_>,
    prepacked_b: Option<&[f32]>,
) {
    // Reuse this thread's packing scratch across calls: the packing loops
    // overwrite every slot they expose (including the zero padding), so no
    // per-call zeroing is needed and the steady-state hot loop allocates
    // nothing.
    thread_local! {
        static SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let (buffer_b, buffer_a) = &mut *scratch;
        let b_len = if prepacked_b.is_some() {
            0
        } else {
            KC.min(k) * NC.min(n).next_multiple_of(kt.nr)
        };
        let a_len = kt.mc.min(row_end - row_start).next_multiple_of(kt.mr) * KC.min(k);
        if buffer_b.len() < b_len {
            buffer_b.resize(b_len, 0.0);
        }
        if buffer_a.len() < a_len {
            buffer_a.resize(a_len, 0.0);
        }
        gemm_blocks(
            kt,
            row_start,
            row_end,
            trans_a,
            trans_b,
            m,
            n,
            k,
            alpha,
            a,
            b,
            beta,
            c_chunk,
            epilogue,
            prepacked_b,
            &mut buffer_b[..b_len],
            &mut buffer_a[..a_len],
        );
    });
}

/// The blocked loop nest of [`gemm_rows`], operating on caller-provided
/// packing scratch (or a shared pre-packed `B`).
#[allow(clippy::too_many_arguments)]
fn gemm_blocks(
    kt: &'static Kernels,
    row_start: usize,
    row_end: usize,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c_chunk: &mut [f32],
    epilogue: Epilogue<'_>,
    prepacked_b: Option<&[f32]>,
    packed_b_scratch: &mut [f32],
    packed_a: &mut [f32],
) {
    let mut shared_offset = 0;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_pad = nc.next_multiple_of(kt.nr);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let panel_b: &[f32] = match prepacked_b {
                Some(shared) => {
                    let block = &shared[shared_offset..shared_offset + kc * nc_pad];
                    shared_offset += kc * nc_pad;
                    block
                }
                None => {
                    pack_b(packed_b_scratch, b, trans_b, k, n, pc, jc, kc, nc, kt.nr);
                    &packed_b_scratch[..kc * nc_pad]
                }
            };
            let last_k_block = pc + kc == k;
            let pass = TilePass {
                beta,
                first_k_block: pc == 0,
                // Store-side transforms fire only on the final K block;
                // resolving them here keeps the micro-kernel's dispatch to
                // one match on two options.
                norm: if last_k_block { epilogue.norm() } else { None },
                activation: if last_k_block {
                    epilogue.activation()
                } else {
                    None
                },
                mask: if last_k_block { epilogue.mask() } else { None },
            };
            let mut ic = row_start;
            while ic < row_end {
                let mc = kt.mc.min(row_end - ic);
                pack_a(packed_a, a, trans_a, m, k, ic, pc, mc, kc, alpha, kt.mr);
                macro_kernel(
                    kt,
                    packed_a,
                    panel_b,
                    mc,
                    nc,
                    kc,
                    c_chunk,
                    (ic - row_start) * n + jc,
                    n,
                    ic,
                    pass,
                );
                ic += mc;
            }
        }
    }
}

/// Per-`(jc, pc)`-block state threaded down to the micro-kernel: how to
/// initialise the accumulators (first `K` block) and which fused
/// transforms the write-back applies (populated only on the final `K`
/// block).
#[derive(Clone, Copy)]
pub(crate) struct TilePass<'a> {
    pub(crate) beta: f32,
    pub(crate) first_k_block: bool,
    pub(crate) norm: Option<ChannelNorm<'a>>,
    pub(crate) activation: Option<EpilogueActivation>,
    /// Backward gradient mask, sliced to align with this worker's chunk of
    /// `C` (so it is indexed with the same chunk-relative offsets).
    pub(crate) mask: Option<GradMask<'a>>,
}

/// Packs the `kc x nc` block of `op(B)` at `(pc, jc)` into `nr`-wide column
/// panels, each laid out k-major: panel `jp` holds `kc` rows of `nr`
/// consecutive values `op(B)[pc + p][jc + jp .. jc + jp + nr]`, zero-padded
/// past `nc`. `nr` is the register-tile width of the dispatch table driving
/// this GEMM, so the packed layout always matches the consuming
/// micro-kernel.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    packed: &mut [f32],
    b: &[f32],
    trans_b: bool,
    k: usize,
    n: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    nr: usize,
) {
    let mut offset = 0;
    for jp in (0..nc).step_by(nr) {
        let width = nr.min(nc - jp);
        for p in 0..kc {
            let dst = &mut packed[offset + p * nr..offset + p * nr + nr];
            if trans_b {
                // Stored B is n x k; op(B)[p][j] = b[j * k + p].
                for (j, slot) in dst.iter_mut().take(width).enumerate() {
                    *slot = b[(jc + jp + j) * k + pc + p];
                }
            } else {
                dst[..width].copy_from_slice(&b[(pc + p) * n + jc + jp..][..width]);
            }
            dst[width..].fill(0.0);
        }
        offset += kc * nr;
    }
}

/// Packs the `mc x kc` block of `op(A)` at `(ic, pc)` into `mr`-tall row
/// panels laid out k-major (`panel[p * mr + i] = alpha * op(A)[ic + ip + i]
/// [pc + p]`), zero-padded past `mc`. Folding `alpha` in here keeps the
/// micro-kernel multiply-add only — and is exact for `alpha == 1`.
///
/// `mr` is the register-tile height of the active dispatch table. The match
/// re-instantiates the packing loop with the height as a compile-time
/// constant so the interleaving store group keeps its fixed stride (and
/// stays vectorisable) on every path.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    packed: &mut [f32],
    a: &[f32],
    trans_a: bool,
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    alpha: f32,
    mr: usize,
) {
    match mr {
        4 => pack_a_panels::<4>(packed, a, trans_a, m, k, ic, pc, mc, kc, alpha),
        6 => pack_a_panels::<6>(packed, a, trans_a, m, k, ic, pc, mc, kc, alpha),
        14 => pack_a_panels::<14>(packed, a, trans_a, m, k, ic, pc, mc, kc, alpha),
        _ => unreachable!("no dispatch table uses MR = {mr}"),
    }
}

/// Monomorphised body of [`pack_a`] for one register-tile height.
#[allow(clippy::too_many_arguments)]
fn pack_a_panels<const MRT: usize>(
    packed: &mut [f32],
    a: &[f32],
    trans_a: bool,
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    alpha: f32,
) {
    let mut offset = 0;
    for ip in (0..mc).step_by(MRT) {
        let height = MRT.min(mc - ip);
        if !trans_a && height == MRT {
            // Common full-panel case: interleave MRT contiguous source rows.
            // The fixed-stride store group vectorises, unlike the generic
            // scalar loop below.
            let rows: [&[f32]; MRT] = std::array::from_fn(|i| &a[(ic + ip + i) * k + pc..][..kc]);
            let dst = &mut packed[offset..offset + kc * MRT];
            for p in 0..kc {
                for (i, row) in rows.iter().enumerate() {
                    dst[p * MRT + i] = alpha * row[p];
                }
            }
        } else {
            for p in 0..kc {
                let dst = &mut packed[offset + p * MRT..offset + p * MRT + MRT];
                for (i, slot) in dst.iter_mut().take(height).enumerate() {
                    let value = if trans_a {
                        // Stored A is k x m; op(A)[i][p] = a[p * m + i].
                        a[(pc + p) * m + ic + ip + i]
                    } else {
                        a[(ic + ip + i) * k + pc + p]
                    };
                    *slot = alpha * value;
                }
                dst[height..].fill(0.0);
            }
        }
        offset += kc * MRT;
    }
}

/// Drives the table's micro-kernel over every `mr x nr` tile of an
/// `mc x nc` block of `C` starting at `c_offset` (leading dimension `ldc`).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    kt: &'static Kernels,
    packed_a: &[f32],
    packed_b: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    let (mr, nr) = (kt.mr, kt.nr);
    for jr in (0..nc).step_by(nr) {
        let width = nr.min(nc - jr);
        let panel_b = &packed_b[(jr / nr) * kc * nr..][..kc * nr];
        for ir in (0..mc).step_by(mr) {
            let height = mr.min(mc - ir);
            let panel_a = &packed_a[(ir / mr) * kc * mr..][..kc * mr];
            (kt.micro)(
                panel_a,
                panel_b,
                kc,
                c,
                c_offset + ir * ldc + jr,
                ldc,
                height,
                width,
                abs_row + ir,
                pass,
            );
        }
    }
}

/// Columns held in each of the micro-kernel's three accumulator thirds.
const NRH: usize = NR / 3;

/// The register-tiled core: accumulates one `MR x NR` tile of `C` over a
/// whole `kc` slice in local accumulators, then writes the valid
/// `height x width` region back. Initialising the accumulators from `C`
/// (scaled by `beta` only on the first `K` block) is what keeps the
/// per-element accumulation chain identical to the naive triple loop.
///
/// The tile is held as three `MR x NRH` column-third arrays rather than one
/// `MR x NR` array: LLVM's scalar-replacement pass only promotes small
/// aggregates to registers, and splitting the tile keeps each third under
/// that limit so the whole accumulator stays in SIMD registers across the
/// `kc` loop (one `MR x NR` array would spill to the stack).
///
/// `manual_memcpy` is allowed deliberately: writing the spill/reload loops
/// as `copy_from_slice` takes references to the accumulator arrays, which
/// blocks their scalar replacement — the index loops keep them in
/// registers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn micro_kernel(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    micro_kernel_impl::<FUSED_MULTIPLY_ADD>(
        panel_a, panel_b, kc, c, c_offset, ldc, height, width, abs_row, pass,
    );
}

/// Body of the scalar micro-kernel, generic over the accumulation step.
///
/// The `FMA` const selects between `mul_add` and separate multiply-plus-add
/// at compile time, with no runtime branch in the `kc` loop. The plain
/// instantiation (`FMA == FUSED_MULTIPLY_ADD`) is the portable fallback;
/// `simd::x86` re-instantiates the `FMA == true` body inside
/// `#[target_feature]` wrappers so that on FMA hardware the forced-scalar
/// dispatch path still lowers `mul_add` to a fused instruction and
/// autovectorises — making it both fast and bit-identical to the explicit
/// SIMD tiles.
#[allow(clippy::too_many_arguments, clippy::manual_memcpy)]
#[inline(always)]
pub(crate) fn micro_kernel_impl<const FMA: bool>(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    abs_row: usize,
    pass: TilePass<'_>,
) {
    let mut acc_l = [[0.0f32; NRH]; MR];
    let mut acc_m = [[0.0f32; NRH]; MR];
    let mut acc_r = [[0.0f32; NRH]; MR];
    let width_l = width.min(NRH);
    let width_m = width.saturating_sub(NRH).min(NRH);
    let width_r = width.saturating_sub(2 * NRH);
    if pass.first_k_block {
        // The epilogue bias never reaches this kernel: `sgemm_epilogue`
        // prefills `C` with it and hands down `beta == 1`, keeping this
        // init identical to the original (adding bias-init arms here was
        // measured to defeat LLVM's scalar replacement of the accumulator
        // tile — a ~2x kernel regression).
        if pass.beta != 0.0 {
            for i in 0..height {
                let c_row = &c[c_offset + i * ldc..][..width];
                for j in 0..width_l {
                    acc_l[i][j] = pass.beta * c_row[j];
                }
                for j in 0..width_m {
                    acc_m[i][j] = pass.beta * c_row[NRH + j];
                }
                for j in 0..width_r {
                    acc_r[i][j] = pass.beta * c_row[2 * NRH + j];
                }
            }
        }
    } else {
        for i in 0..height {
            let c_row = &c[c_offset + i * ldc..][..width];
            for j in 0..width_l {
                acc_l[i][j] = c_row[j];
            }
            for j in 0..width_m {
                acc_m[i][j] = c_row[NRH + j];
            }
            for j in 0..width_r {
                acc_r[i][j] = c_row[2 * NRH + j];
            }
        }
    }
    for p in 0..kc {
        let b_l: &[f32; NRH] = panel_b[p * NR..]
            .first_chunk()
            .expect("packed B panel is kc * NR long");
        let b_m: &[f32; NRH] = panel_b[p * NR + NRH..]
            .first_chunk()
            .expect("packed B panel is kc * NR long");
        let b_r: &[f32; NRH] = panel_b[p * NR + 2 * NRH..]
            .first_chunk()
            .expect("packed B panel is kc * NR long");
        let a_col: &[f32; MR] = panel_a[p * MR..]
            .first_chunk()
            .expect("packed A panel is kc * MR long");
        for i in 0..MR {
            let a_value = a_col[i];
            let left = &mut acc_l[i];
            for j in 0..NRH {
                left[j] = fma_step::<FMA>(a_value, b_l[j], left[j]);
            }
            let middle = &mut acc_m[i];
            for j in 0..NRH {
                middle[j] = fma_step::<FMA>(a_value, b_m[j], middle[j]);
            }
            let right = &mut acc_r[i];
            for j in 0..NRH {
                right[j] = fma_step::<FMA>(a_value, b_r[j], right[j]);
            }
        }
    }
    // The fused norm/activation/mask fires exactly once, in the final K
    // block's write-back, while the tile is still in registers; spills
    // between K blocks store the raw partial sums. `f` receives the
    // tile-local row (for per-row norm statistics, indexed by absolute
    // output channel) and the column within the row (for the element-wise
    // gradient mask).
    macro_rules! store_tile {
        ($f:expr) => {{
            let f = $f;
            for i in 0..height {
                let c_row = &mut c[c_offset + i * ldc..][..width];
                for j in 0..width_l {
                    c_row[j] = f(i, j, acc_l[i][j]);
                }
                for j in 0..width_m {
                    c_row[NRH + j] = f(i, NRH + j, acc_m[i][j]);
                }
                for j in 0..width_r {
                    c_row[2 * NRH + j] = f(i, 2 * NRH + j, acc_r[i][j]);
                }
            }
        }};
    }
    if let Some(mask) = pass.mask {
        // Backward masking: multiply each element by the activation
        // derivative at the matching cached forward input (chunk-aligned
        // slice, so the offsets mirror `c` exactly).
        store_tile!(|i: usize, j: usize, x: f32| {
            x * mask.grad.derivative(mask.input[c_offset + i * ldc + j])
        });
        return;
    }
    match (pass.norm, pass.activation) {
        (None, None) => store_tile!(|_i: usize, _j: usize, x: f32| x),
        (None, Some(EpilogueActivation::Relu)) => {
            store_tile!(|_i: usize, _j: usize, x: f32| x.max(0.0))
        }
        (None, Some(act)) => store_tile!(|_i: usize, _j: usize, x: f32| act.apply(x)),
        (Some(nm), act) => {
            // Hoist each row's channel constants (one sqrt + divide) out of
            // the store loops; reuse is bit-identical to recomputation.
            let mut rows = [NormParams::default(); MR];
            for (i, slot) in rows.iter_mut().enumerate().take(height) {
                *slot = nm.params(abs_row + i);
            }
            match act {
                None => store_tile!(|i: usize, _j: usize, x: f32| rows[i].transform(x)),
                Some(act) => {
                    store_tile!(|i: usize, _j: usize, x: f32| act.apply(rows[i].transform(x)))
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod oracle {
    //! The naive reference kernel the blocked GEMM is tested against.
    //!
    //! This is the seed's single-threaded triple loop (minus its
    //! `a == 0.0` sparsity skip, which was removed because it perturbed the
    //! accumulation chain for pruned weights without ever paying for
    //! itself). It exists only as a test oracle: the production path is
    //! [`super::sgemm`].

    /// `C = alpha * op(A) * op(B) + beta * C`, one ascending-k accumulation
    /// chain per element — the semantics [`super::sgemm`] must match to
    /// 0 ULP.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = if beta == 0.0 {
                    0.0
                } else {
                    beta * c[i * n + j]
                };
                for p in 0..k {
                    let a_value = if trans_a { a[p * m + i] } else { a[i * k + p] };
                    let b_value = if trans_b { b[j * k + p] } else { b[p * n + j] };
                    acc = super::fused_mul_add(alpha * a_value, b_value, acc);
                }
                c[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;
    use crate::simd::Isa;

    fn random_vec(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.normal_with(0.0, 1.0)).collect()
    }

    fn assert_bits_equal(actual: &[f32], expected: &[f32], context: &str) {
        assert_eq!(actual.len(), expected.len(), "{context}: length");
        for (index, (x, y)) in actual.iter().zip(expected).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: element {index} differs ({x} vs {y})"
            );
        }
    }

    /// The satellite property test: blocked GEMM == naive oracle to 0 ULP
    /// across random shapes, transpose flags, alpha/beta and thread counts.
    #[test]
    fn property_gemm_matches_oracle_to_zero_ulp() {
        let mut rng = StdRng::seed_from(0xBEEF);
        let alphas = [1.0f32, -1.0, 0.5];
        let betas = [0.0f32, 1.0, 0.25];
        for case in 0..60 {
            let m = 1 + (rng.next_u64() % 50) as usize;
            let n = 1 + (rng.next_u64() % 50) as usize;
            let k = 1 + (rng.next_u64() % 50) as usize;
            let trans_a = rng.next_u64().is_multiple_of(2);
            let trans_b = rng.next_u64().is_multiple_of(2);
            let alpha = alphas[(rng.next_u64() % alphas.len() as u64) as usize];
            let beta = betas[(rng.next_u64() % betas.len() as u64) as usize];
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let c0 = random_vec(m * n, &mut rng);
            let mut expected = c0.clone();
            oracle::gemm(
                trans_a,
                trans_b,
                m,
                n,
                k,
                alpha,
                &a,
                &b,
                beta,
                &mut expected,
            );
            for threads in [1usize, 2, 4] {
                let mut c = c0.clone();
                sgemm(
                    trans_a,
                    trans_b,
                    m,
                    n,
                    k,
                    alpha,
                    &a,
                    &b,
                    beta,
                    &mut c,
                    Parallelism::fixed(threads),
                );
                assert_bits_equal(
                    &c,
                    &expected,
                    &format!(
                        "case {case}: m={m} n={n} k={k} ta={trans_a} tb={trans_b} \
                         alpha={alpha} beta={beta} threads={threads}"
                    ),
                );
            }
        }
    }

    /// Shapes that cross every blocking boundary (MC, KC, NC and the MR/NR
    /// edge tiles) still match the oracle exactly.
    #[test]
    fn blocking_boundaries_match_oracle_to_zero_ulp() {
        let mut rng = StdRng::seed_from(42);
        for &(m, n, k) in &[
            (MC + MR + 1, NR - 1, KC + 3),
            (MR - 1, NC + NR + 5, 7),
            (2 * MC, 2 * NR, 2 * KC),
            (1, 1, KC + 1),
        ] {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut expected = vec![0.0; m * n];
            oracle::gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut expected);
            let mut c = vec![0.0; m * n];
            sgemm(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                Parallelism::fixed(3),
            );
            assert_bits_equal(&c, &expected, &format!("m={m} n={n} k={k}"));
        }
    }

    /// A shape big enough to actually engage the scoped-thread split must be
    /// bit-identical for every thread count. (Small shapes are clamped to a
    /// single worker by the per-ISA FLOP floor, so this shape carries
    /// several threads' worth of multiply-accumulates even at the AVX-512
    /// floor, the highest of the three.)
    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from(7);
        let (m, n, k) = (512, 512, 512);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let reference = {
            let mut c = vec![0.0; m * n];
            sgemm(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                Parallelism::single(),
            );
            c
        };
        for threads in [2usize, 3, 4, 8] {
            let mut c = vec![0.0; m * n];
            sgemm(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                Parallelism::fixed(threads),
            );
            assert_bits_equal(&c, &reference, &format!("threads={threads}"));
        }
    }

    /// Every detected dispatch path matches the naive oracle to 0 ULP on
    /// shapes covering the GEMV fast path (`m == 1`), ragged edge tiles and
    /// multi-`KC` accumulation chains, under both transpose flags and a
    /// non-trivial `beta`.
    #[test]
    fn property_gemm_matches_oracle_on_every_isa_path() {
        let mut rng = StdRng::seed_from(0x15A0);
        let shapes = [
            (1usize, 33usize, 70usize),
            (1, 200, 320),
            (5, 17, 300),
            (37, 41, 29),
            (64, 48, 80),
        ];
        for &(m, n, k) in &shapes {
            for &(trans_a, trans_b) in &[(false, false), (true, false), (false, true)] {
                let a = random_vec(m * k, &mut rng);
                let b = random_vec(k * n, &mut rng);
                let c0 = random_vec(m * n, &mut rng);
                let mut expected = c0.clone();
                oracle::gemm(trans_a, trans_b, m, n, k, 1.0, &a, &b, 0.5, &mut expected);
                for isa in Isa::available() {
                    let mut c = c0.clone();
                    isa.with(|| {
                        sgemm(
                            trans_a,
                            trans_b,
                            m,
                            n,
                            k,
                            1.0,
                            &a,
                            &b,
                            0.5,
                            &mut c,
                            Parallelism::single(),
                        )
                    })
                    .unwrap();
                    assert_bits_equal(
                        &c,
                        &expected,
                        &format!("isa={isa} m={m} n={n} k={k} ta={trans_a} tb={trans_b}"),
                    );
                }
            }
        }
    }

    /// The whole `(ISA, threads)` matrix produces one answer on a shape
    /// that genuinely splits across workers on every path: on FMA hardware
    /// every dispatch path — the re-instantiated scalar one included —
    /// accumulates with the same correctly-rounded fused multiply-add, so
    /// the explicit SIMD tiles must agree with the scalar chain bit for
    /// bit. (On hardware without FMA only the scalar path is available and
    /// the matrix degenerates to the thread-invariance check.)
    #[test]
    fn isa_paths_are_bit_identical_threaded() {
        let mut rng = StdRng::seed_from(0x51AD);
        let (m, n, k) = (512, 512, 512); // 134M MACs: 4 workers even at the AVX-512 floor
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let reference = {
            let mut c = vec![0.0; m * n];
            Isa::Scalar
                .with(|| {
                    sgemm(
                        false,
                        false,
                        m,
                        n,
                        k,
                        1.0,
                        &a,
                        &b,
                        0.0,
                        &mut c,
                        Parallelism::single(),
                    )
                })
                .unwrap();
            c
        };
        for isa in Isa::available() {
            for threads in [1usize, 2, 4] {
                let mut c = vec![0.0; m * n];
                isa.with(|| {
                    sgemm(
                        false,
                        false,
                        m,
                        n,
                        k,
                        1.0,
                        &a,
                        &b,
                        0.0,
                        &mut c,
                        Parallelism::fixed(threads),
                    )
                })
                .unwrap();
                assert_bits_equal(&c, &reference, &format!("isa={isa} threads={threads}"));
            }
        }
    }

    /// Cross-path bitwise agreement for every fused epilogue form — bias
    /// on both axes with each activation (including the scalar-evaluated
    /// Sigmoid), the batch-norm write-back and the backward gradient mask —
    /// on both the tiled path and the `m == 1` GEMV fast path.
    #[test]
    fn isa_paths_agree_bitwise_on_fused_epilogues() {
        let mut rng = StdRng::seed_from(0xE51A);
        let activations = [
            None,
            Some(EpilogueActivation::Relu),
            Some(EpilogueActivation::Sigmoid),
            Some(EpilogueActivation::HardSigmoid),
            Some(EpilogueActivation::HardSwish),
        ];
        for (case, &activation) in activations.iter().enumerate() {
            for &(m, n, k) in &[(1usize, 45 + case, 130usize), (39 + case, 50, 120)] {
                let axis = if case % 2 == 0 {
                    BiasAxis::Row
                } else {
                    BiasAxis::Col
                };
                let trans_b = case % 2 == 1;
                let a = random_vec(m * k, &mut rng);
                let b = random_vec(k * n, &mut rng);
                let bias_values = random_vec(
                    match axis {
                        BiasAxis::Row => m,
                        BiasAxis::Col => n,
                    },
                    &mut rng,
                );
                let bias = Bias {
                    values: &bias_values,
                    axis,
                };
                let epilogue = Epilogue::with_activation(bias, activation);
                let run = |isa: Isa| {
                    let mut c = vec![f32::NAN; m * n];
                    isa.with(|| {
                        sgemm_epilogue(
                            false,
                            trans_b,
                            m,
                            n,
                            k,
                            1.0,
                            &a,
                            &b,
                            0.0,
                            &mut c,
                            epilogue,
                            Parallelism::single(),
                        )
                    })
                    .unwrap();
                    c
                };
                let reference = run(Isa::Scalar);
                for isa in Isa::available() {
                    assert_bits_equal(
                        &run(isa),
                        &reference,
                        &format!("isa={isa} m={m} n={n} k={k} act={activation:?} axis={axis:?}"),
                    );
                }
            }
        }
        // Norm and gradient-mask epilogues over the same path matrix.
        let (m, n, k) = (53usize, 47usize, 140usize);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let gamma = random_vec(m, &mut rng);
        let shift = random_vec(m, &mut rng);
        let mean = random_vec(m, &mut rng);
        let var: Vec<f32> = (0..m).map(|_| rng.uniform_range(0.05, 2.0)).collect();
        let forward_input = random_vec(m * n, &mut rng);
        let norm_epilogue = Epilogue::BiasNorm {
            bias: None,
            norm: ChannelNorm {
                gamma: &gamma,
                beta: &shift,
                mean: &mean,
                var: &var,
                epsilon: 1e-5,
            },
            activation: Some(EpilogueActivation::HardSwish),
        };
        let mask_epilogue = Epilogue::Mask(GradMask {
            input: &forward_input,
            grad: ActivationGrad::HardSwish,
        });
        for (label, epilogue) in [("norm", norm_epilogue), ("mask", mask_epilogue)] {
            let run = |isa: Isa| {
                let mut c = vec![f32::NAN; m * n];
                isa.with(|| {
                    sgemm_epilogue(
                        false,
                        false,
                        m,
                        n,
                        k,
                        1.0,
                        &a,
                        &b,
                        0.0,
                        &mut c,
                        epilogue,
                        Parallelism::single(),
                    )
                })
                .unwrap();
                c
            };
            let reference = run(Isa::Scalar);
            for isa in Isa::available() {
                assert_bits_equal(&run(isa), &reference, &format!("isa={isa} {label}"));
            }
        }
    }

    /// The unfused reference a bias/activation epilogue must match exactly:
    /// bias-prefilled output, `beta == 1` GEMM, separate activation pass.
    #[allow(clippy::too_many_arguments)]
    fn unfused_reference(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        bias: Bias<'_>,
        activation: Option<EpilogueActivation>,
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for (row_index, row) in c.chunks_mut(n).enumerate() {
            match bias.axis {
                BiasAxis::Row => row.fill(bias.values[row_index]),
                BiasAxis::Col => row.copy_from_slice(bias.values),
            }
        }
        sgemm(
            trans_a,
            trans_b,
            m,
            n,
            k,
            1.0,
            a,
            b,
            1.0,
            &mut c,
            Parallelism::single(),
        );
        if let Some(act) = activation {
            for x in c.iter_mut() {
                *x = act.apply(*x);
            }
        }
        c
    }

    /// The tentpole property: a fused epilogue is bit-identical to the
    /// bias-prefill + separate-activation reference across random shapes,
    /// transpose flags, bias axes, activations and thread counts — including
    /// shapes that span several KC blocks (the activation must fire only on
    /// the final K block's write-back) and shapes that carry several
    /// threads' worth of MACs, so the scoped-thread fused write-back
    /// genuinely runs multi-threaded (small shapes are clamped to one
    /// worker by the FLOP threshold in `parallel.rs`).
    #[test]
    fn property_fused_epilogue_matches_unfused_reference_to_zero_ulp() {
        let mut rng = StdRng::seed_from(0xF00D);
        let activations = [
            None,
            Some(EpilogueActivation::Relu),
            Some(EpilogueActivation::Sigmoid),
        ];
        for case in 0..44 {
            // Every eighth case is sized past the parallel threshold
            // (>= 2 threads' worth of MACs at the highest per-ISA floor) so
            // `Parallelism::fixed(2/4)` below actually splits rows.
            let (m, n, k) = if case % 8 == 7 {
                (
                    448 + (rng.next_u64() % 64) as usize,
                    320 + (rng.next_u64() % 32) as usize,
                    480 + (rng.next_u64() % 64) as usize,
                )
            } else {
                (
                    1 + (rng.next_u64() % 70) as usize,
                    1 + (rng.next_u64() % 70) as usize,
                    // Bias chains must survive KC spills: push k across the
                    // boundary on a third of the cases.
                    1 + (rng.next_u64() % if case % 3 == 0 { 600 } else { 60 }) as usize,
                )
            };
            let trans_a = rng.next_u64().is_multiple_of(2);
            let trans_b = rng.next_u64().is_multiple_of(2);
            let axis = if rng.next_u64().is_multiple_of(2) {
                BiasAxis::Row
            } else {
                BiasAxis::Col
            };
            let activation = activations[(rng.next_u64() % 3) as usize];
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let bias_values = random_vec(
                match axis {
                    BiasAxis::Row => m,
                    BiasAxis::Col => n,
                },
                &mut rng,
            );
            let bias = Bias {
                values: &bias_values,
                axis,
            };
            let expected = unfused_reference(trans_a, trans_b, m, n, k, &a, &b, bias, activation);
            for threads in [1usize, 2, 4] {
                let mut c = vec![f32::NAN; m * n];
                sgemm_epilogue(
                    trans_a,
                    trans_b,
                    m,
                    n,
                    k,
                    1.0,
                    &a,
                    &b,
                    0.0,
                    &mut c,
                    Epilogue::with_activation(bias, activation),
                    Parallelism::fixed(threads),
                );
                assert_bits_equal(
                    &c,
                    &expected,
                    &format!(
                        "case {case}: m={m} n={n} k={k} ta={trans_a} tb={trans_b} \
                         axis={axis:?} act={activation:?} threads={threads}"
                    ),
                );
            }
        }
    }

    /// The conv → batch-norm (→ activation) epilogue on a shape big enough
    /// to split across scoped threads: bit-identical to the unfused
    /// bias-GEMM + separate norm pass + separate activation pass, with the
    /// per-row statistics indexed by absolute row across every partition.
    #[test]
    fn norm_epilogue_matches_separate_passes_across_threads() {
        let mut rng = StdRng::seed_from(0x11AB);
        let (m, n, k) = (448, 320, 512); // ~73M MACs: two workers even at the AVX-512 floor
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let bias_values = random_vec(m, &mut rng);
        let gamma = random_vec(m, &mut rng);
        let beta_values = random_vec(m, &mut rng);
        let mean = random_vec(m, &mut rng);
        let var: Vec<f32> = (0..m).map(|_| rng.uniform_range(0.05, 2.0)).collect();
        let norm = ChannelNorm {
            gamma: &gamma,
            beta: &beta_values,
            mean: &mean,
            var: &var,
            epsilon: 1e-5,
        };
        let bias = Bias {
            values: &bias_values,
            axis: BiasAxis::Row,
        };
        let mut expected = unfused_reference(false, false, m, n, k, &a, &b, bias, None);
        for (row_index, row) in expected.chunks_mut(n).enumerate() {
            let params = norm.params(row_index);
            for x in row.iter_mut() {
                *x = params.transform(*x);
            }
            for x in row.iter_mut() {
                *x = EpilogueActivation::HardSwish.apply(*x);
            }
        }
        for threads in [1usize, 2, 4] {
            let mut c = vec![f32::NAN; m * n];
            sgemm_epilogue(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                Epilogue::BiasNorm {
                    bias: Some(bias),
                    norm,
                    activation: Some(EpilogueActivation::HardSwish),
                },
                Parallelism::fixed(threads),
            );
            assert_bits_equal(&c, &expected, &format!("norm epilogue, threads={threads}"));
        }
    }

    /// The backward-fusion property: a [`Epilogue::Mask`] GEMM is
    /// bit-identical to the unfused GEMM followed by the standalone
    /// derivative-then-multiply pass, across random shapes, transpose
    /// flags, every activation derivative and thread counts — including
    /// shapes spanning several KC blocks (the mask must fire only on the
    /// final K block's write-back) and shapes with several threads' worth
    /// of MACs so the chunk-aligned mask slicing genuinely runs threaded.
    #[test]
    fn property_grad_mask_epilogue_matches_unfused_reference_to_zero_ulp() {
        let mut rng = StdRng::seed_from(0x6AAD);
        let grads = [
            ActivationGrad::Relu,
            ActivationGrad::Sigmoid,
            ActivationGrad::HardSigmoid,
            ActivationGrad::HardSwish,
        ];
        for case in 0..32 {
            let (m, n, k) = if case % 8 == 7 {
                (
                    448 + (rng.next_u64() % 64) as usize,
                    320 + (rng.next_u64() % 32) as usize,
                    480 + (rng.next_u64() % 64) as usize,
                )
            } else {
                (
                    1 + (rng.next_u64() % 70) as usize,
                    1 + (rng.next_u64() % 70) as usize,
                    1 + (rng.next_u64() % if case % 3 == 0 { 600 } else { 60 }) as usize,
                )
            };
            let trans_a = rng.next_u64().is_multiple_of(2);
            let trans_b = rng.next_u64().is_multiple_of(2);
            let grad = grads[(rng.next_u64() % grads.len() as u64) as usize];
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let forward_input = random_vec(m * n, &mut rng);
            // Unfused reference: plain GEMM, then the standalone activation
            // backward (derivative pass + element-wise product).
            let mut expected = vec![0.0f32; m * n];
            sgemm(
                trans_a,
                trans_b,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut expected,
                Parallelism::single(),
            );
            for (slot, &x) in expected.iter_mut().zip(&forward_input) {
                *slot *= grad.derivative(x);
            }
            for threads in [1usize, 2, 4] {
                let mut c = vec![f32::NAN; m * n];
                sgemm_epilogue(
                    trans_a,
                    trans_b,
                    m,
                    n,
                    k,
                    1.0,
                    &a,
                    &b,
                    0.0,
                    &mut c,
                    Epilogue::Mask(GradMask {
                        input: &forward_input,
                        grad,
                    }),
                    Parallelism::fixed(threads),
                );
                assert_bits_equal(
                    &c,
                    &expected,
                    &format!(
                        "case {case}: m={m} n={n} k={k} ta={trans_a} tb={trans_b} \
                         grad={grad:?} threads={threads}"
                    ),
                );
            }
        }
    }

    #[test]
    fn grad_mask_on_degenerate_k_masks_zeros() {
        // k == 0: the chain is 0 * derivative — still multiplied, so the
        // sign of zero matches the unfused pass.
        let forward_input = [1.0f32, -2.0, 0.5, -0.5];
        let mut c = [f32::NAN; 4];
        sgemm_epilogue(
            false,
            false,
            2,
            2,
            0,
            1.0,
            &[],
            &[],
            0.0,
            &mut c,
            Epilogue::Mask(GradMask {
                input: &forward_input,
                grad: ActivationGrad::Relu,
            }),
            Parallelism::single(),
        );
        assert_eq!(c, [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn degenerate_epilogue_broadcasts_activated_bias() {
        // k == 0: the chain is just the bias, activated.
        let bias_values = [2.0f32, -3.0];
        let mut c = [f32::NAN; 4];
        sgemm_epilogue(
            false,
            false,
            2,
            2,
            0,
            1.0,
            &[],
            &[],
            0.0,
            &mut c,
            Epilogue::BiasRelu(Bias {
                values: &bias_values,
                axis: BiasAxis::Row,
            }),
            Parallelism::single(),
        );
        assert_eq!(c, [2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bias epilogue requires beta == 0")]
    fn bias_epilogue_rejects_nonzero_beta() {
        let bias_values = [1.0f32];
        let mut c = [0.0f32; 1];
        sgemm_epilogue(
            false,
            false,
            1,
            1,
            1,
            1.0,
            &[1.0],
            &[1.0],
            1.0,
            &mut c,
            Epilogue::Bias(Bias {
                values: &bias_values,
                axis: BiasAxis::Col,
            }),
            Parallelism::single(),
        );
    }

    #[test]
    fn beta_zero_overwrites_poisoned_output() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [f32::NAN; 1];
        sgemm(
            false,
            false,
            1,
            1,
            2,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c[0], 11.0);
    }

    #[test]
    fn degenerate_k_applies_beta_only() {
        let mut c = [2.0f32, -4.0];
        sgemm(
            false,
            false,
            1,
            2,
            0,
            1.0,
            &[],
            &[],
            0.5,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c, [1.0, -2.0]);
        let mut c = [f32::NAN, f32::NAN];
        sgemm(
            false,
            false,
            1,
            2,
            0,
            1.0,
            &[],
            &[],
            0.0,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c, [0.0, 0.0]);
    }

    #[test]
    fn alpha_zero_short_circuits_to_beta_scaling() {
        let a = [f32::NAN; 4];
        let b = [f32::NAN; 4];
        let mut c = [1.0f32, 2.0, 3.0, 4.0];
        sgemm(
            false,
            false,
            2,
            2,
            2,
            0.0,
            &a,
            &b,
            2.0,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c, [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "sgemm: A buffer")]
    fn mismatched_buffers_panic() {
        let mut c = [0.0f32; 4];
        sgemm(
            false,
            false,
            2,
            2,
            2,
            1.0,
            &[0.0; 3],
            &[0.0; 4],
            0.0,
            &mut c,
            Parallelism::single(),
        );
    }
}
