//! The packed, cache-blocked SGEMM every forward and backward pass runs on.
//!
//! # Design
//!
//! [`sgemm`] computes `C = alpha * op(A) * op(B) + beta * C` for row-major
//! `f32` matrices, following the classic three-level blocking scheme (as in
//! BLIS/GotoBLAS):
//!
//! * the `N` dimension is split into `NC`-wide column blocks,
//! * the `K` dimension into `KC`-deep slices — each `KC x NC` block of `B`
//!   is packed once into NR-wide column panels,
//! * the `M` dimension into `MC`-tall row blocks — each `MC x KC` block of
//!   `A` is packed into MR-tall row panels (with `alpha` folded in),
//!
//! and a register-tiled `MR x NR` micro-kernel accumulates one output tile
//! over the whole `KC` slice without touching memory for `C` in its inner
//! loop. Packing both operands makes every micro-kernel read sequential,
//! keeps the working set inside the cache hierarchy, and handles the
//! transpose flags for free — callers never materialise a transposed copy.
//!
//! # Determinism contract
//!
//! Each output element `C[i][j]` is produced by exactly one accumulation
//! chain, in this exact order:
//!
//! ```text
//! acc = (beta == 0 ? 0 : beta * C[i][j])          // beta == 0 kills NaNs
//! for p in 0..k (ascending): acc += (alpha * A[i][p]) * B[p][j]
//! C[i][j] = acc
//! ```
//!
//! Cache blocking spills partial `acc` values to `C` between `KC` slices and
//! reloads them, which leaves the chain order unchanged; multi-threading
//! partitions *rows of `C`* only, so every element is written by exactly one
//! thread running exactly this chain. Results are therefore **bit-identical
//! for every thread count and every blocking configuration**, and for
//! `alpha == 1, beta == 0` they are bit-identical to the textbook naive
//! triple loop (the `#[cfg(test)]` oracle below enforces this to 0 ULP).

use crate::parallel::{partition_rows, Parallelism};

/// Rows of one register tile (micro-panel height of packed `A`).
pub const MR: usize = 4;
/// Columns of one register tile (micro-panel width of packed `B`).
///
/// The `4 x 24` tile is tuned for 256-bit SIMD: twelve independent 8-wide
/// accumulator chains (enough to cover FMA latency at two issues per
/// cycle) fed by three packed-`B` loads and four packed-`A` broadcasts per
/// step, which keeps the load ports well under the FMA issue rate while
/// filling the 16-register file.
pub const NR: usize = 24;
/// Row-block size: `MC x KC` panels of `A` are packed to stay cache-hot.
const MC: usize = 128;
/// Depth-block size: the shared `K` dimension is consumed `KC` at a time.
const KC: usize = 256;
/// Column-block size: `KC x NC` panels of `B` are packed per depth block.
const NC: usize = 512;

/// Minimum `m * n * k` volume before the kernel spreads rows over threads;
/// below this the scoped-thread spawn overhead outweighs the work.
const PARALLEL_MIN_VOLUME: usize = 64 * 64 * 64;

/// Whether this build accumulates with hardware fused multiply-add.
///
/// Resolved at compile time so the same operation is used everywhere in the
/// crate (micro-kernel, oracle, and the im2col convolution driver), keeping
/// results bit-identical between code paths within one build.
pub const FUSED_MULTIPLY_ADD: bool = cfg!(any(target_feature = "fma", target_arch = "aarch64"));

/// The single accumulation step `acc + a * b` used by every kernel in this
/// crate.
///
/// On targets with hardware FMA (x86-64 with the `fma` feature, all
/// aarch64) this is `f32::mul_add` — one instruction, one rounding, and the
/// form LLVM vectorizes to `vfmadd`. On targets without it, `mul_add`
/// would fall back to a scalar libm routine, so the plain two-rounding
/// `acc + a * b` is used instead. The choice is a compile-time constant:
/// within any one build every accumulation chain uses exactly one of the
/// two forms, so determinism across thread counts and across code paths is
/// unaffected.
#[inline(always)]
pub fn fused_mul_add(a: f32, b: f32, acc: f32) -> f32 {
    if FUSED_MULTIPLY_ADD {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// All matrices are dense, row-major `f32` slices. `op(A)` is `m x k`: the
/// slice `a` stores it as `m x k` when `trans_a` is false and as `k x m`
/// (i.e. `op` reads it transposed) when true; likewise `op(B)` is `k x n`
/// stored as `k x n` or `n x k`. `C` is always `m x n`.
///
/// `par` bounds the worker-thread count; see the module docs for why the
/// result is bit-identical for every thread count. When `beta == 0` the
/// existing contents of `c` are ignored entirely (never multiplied), so an
/// uninitialised or NaN-filled buffer is safe.
///
/// # Panics
///
/// Panics if `a.len() != m * k`, `b.len() != k * n` or `c.len() != m * n`.
///
/// # Example
///
/// ```
/// use mtlsplit_tensor::{sgemm, Parallelism};
///
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let b = [5.0, 6.0, 7.0, 8.0]; // 2x2
/// let mut c = [0.0f32; 4];
/// sgemm(
///     false, false, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c,
///     Parallelism::single(),
/// );
/// assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    par: Parallelism,
) {
    assert_eq!(a.len(), m * k, "sgemm: A buffer does not match m x k");
    assert_eq!(b.len(), k * n, "sgemm: B buffer does not match k x n");
    assert_eq!(c.len(), m * n, "sgemm: C buffer does not match m x n");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == 0.0 {
        scale_c(c, beta);
        return;
    }
    let volume = m.saturating_mul(n).saturating_mul(k);
    let mut threads = par.resolve().min(m.div_ceil(MR));
    if volume < PARALLEL_MIN_VOLUME {
        threads = 1;
    }
    if threads <= 1 {
        gemm_rows(0, m, trans_a, trans_b, m, n, k, alpha, a, b, beta, c, None);
        return;
    }
    // Pack every (jc, pc) block of B once up front; the row-partition
    // workers all read the same shared panels instead of re-packing B per
    // thread. Block contents and iteration order are identical to the
    // serial path, so the accumulation chains are unchanged.
    let mut shared_len = 0;
    for jc in (0..n).step_by(NC) {
        shared_len += k * NC.min(n - jc).next_multiple_of(NR);
    }
    let mut shared_b = vec![0.0f32; shared_len];
    let mut offset = 0;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_pad = nc.next_multiple_of(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(
                &mut shared_b[offset..offset + kc * nc_pad],
                b,
                trans_b,
                k,
                n,
                pc,
                jc,
                kc,
                nc,
            );
            offset += kc * nc_pad;
        }
    }
    let shared_b = &shared_b[..];
    let ranges = partition_rows(m, threads, MR);
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut handles = Vec::new();
        for (index, range) in ranges.iter().enumerate() {
            let rows = range.end - range.start;
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let (start, end) = (range.start, range.end);
            if index + 1 == ranges.len() {
                // The caller works the final chunk itself.
                gemm_rows(
                    start,
                    end,
                    trans_a,
                    trans_b,
                    m,
                    n,
                    k,
                    alpha,
                    a,
                    b,
                    beta,
                    chunk,
                    Some(shared_b),
                );
            } else {
                handles.push(scope.spawn(move || {
                    gemm_rows(
                        start,
                        end,
                        trans_a,
                        trans_b,
                        m,
                        n,
                        k,
                        alpha,
                        a,
                        b,
                        beta,
                        chunk,
                        Some(shared_b),
                    );
                }));
            }
        }
        for handle in handles {
            handle.join().expect("sgemm worker thread panicked");
        }
    });
}

/// Applies the `beta` pre-scale used by the degenerate (`k == 0` or
/// `alpha == 0`) paths.
fn scale_c(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// Serial blocked GEMM over the row range `[row_start, row_end)` of `C`.
///
/// `c_chunk` holds exactly those rows (`(row_end - row_start) * n` values);
/// `a` and `b` are the full operands. When `prepacked_b` is given it must
/// hold every `(jc, pc)` block of packed `B` in iteration order (the
/// threaded path shares one such buffer across workers); otherwise blocks
/// are packed on the fly into thread-local scratch. This is the unit of
/// work one thread executes — the blocking below never depends on which
/// rows the range covers beyond their packing, so the accumulation chain
/// per element is partition-independent.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    row_start: usize,
    row_end: usize,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c_chunk: &mut [f32],
    prepacked_b: Option<&[f32]>,
) {
    // Reuse this thread's packing scratch across calls: the packing loops
    // overwrite every slot they expose (including the zero padding), so no
    // per-call zeroing is needed and the steady-state hot loop allocates
    // nothing.
    thread_local! {
        static SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let (buffer_b, buffer_a) = &mut *scratch;
        let b_len = if prepacked_b.is_some() {
            0
        } else {
            KC.min(k) * NC.min(n).next_multiple_of(NR)
        };
        let a_len = MC.min(row_end - row_start).next_multiple_of(MR) * KC.min(k);
        if buffer_b.len() < b_len {
            buffer_b.resize(b_len, 0.0);
        }
        if buffer_a.len() < a_len {
            buffer_a.resize(a_len, 0.0);
        }
        gemm_blocks(
            row_start,
            row_end,
            trans_a,
            trans_b,
            m,
            n,
            k,
            alpha,
            a,
            b,
            beta,
            c_chunk,
            prepacked_b,
            &mut buffer_b[..b_len],
            &mut buffer_a[..a_len],
        );
    });
}

/// The blocked loop nest of [`gemm_rows`], operating on caller-provided
/// packing scratch (or a shared pre-packed `B`).
#[allow(clippy::too_many_arguments)]
fn gemm_blocks(
    row_start: usize,
    row_end: usize,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c_chunk: &mut [f32],
    prepacked_b: Option<&[f32]>,
    packed_b_scratch: &mut [f32],
    packed_a: &mut [f32],
) {
    let mut shared_offset = 0;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_pad = nc.next_multiple_of(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let panel_b: &[f32] = match prepacked_b {
                Some(shared) => {
                    let block = &shared[shared_offset..shared_offset + kc * nc_pad];
                    shared_offset += kc * nc_pad;
                    block
                }
                None => {
                    pack_b(packed_b_scratch, b, trans_b, k, n, pc, jc, kc, nc);
                    &packed_b_scratch[..kc * nc_pad]
                }
            };
            let first_k_block = pc == 0;
            let mut ic = row_start;
            while ic < row_end {
                let mc = MC.min(row_end - ic);
                pack_a(packed_a, a, trans_a, m, k, ic, pc, mc, kc, alpha);
                macro_kernel(
                    packed_a,
                    panel_b,
                    mc,
                    nc,
                    kc,
                    c_chunk,
                    (ic - row_start) * n + jc,
                    n,
                    beta,
                    first_k_block,
                );
                ic += mc;
            }
        }
    }
}

/// Packs the `kc x nc` block of `op(B)` at `(pc, jc)` into NR-wide column
/// panels, each laid out k-major: panel `jp` holds `kc` rows of `NR`
/// consecutive values `op(B)[pc + p][jc + jp .. jc + jp + NR]`, zero-padded
/// past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    packed: &mut [f32],
    b: &[f32],
    trans_b: bool,
    k: usize,
    n: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    let mut offset = 0;
    for jp in (0..nc).step_by(NR) {
        let width = NR.min(nc - jp);
        for p in 0..kc {
            let dst = &mut packed[offset + p * NR..offset + p * NR + NR];
            if trans_b {
                // Stored B is n x k; op(B)[p][j] = b[j * k + p].
                for (j, slot) in dst.iter_mut().take(width).enumerate() {
                    *slot = b[(jc + jp + j) * k + pc + p];
                }
            } else {
                dst[..width].copy_from_slice(&b[(pc + p) * n + jc + jp..][..width]);
            }
            dst[width..].fill(0.0);
        }
        offset += kc * NR;
    }
}

/// Packs the `mc x kc` block of `op(A)` at `(ic, pc)` into MR-tall row
/// panels laid out k-major (`panel[p * MR + i] = alpha * op(A)[ic + ip + i]
/// [pc + p]`), zero-padded past `mc`. Folding `alpha` in here keeps the
/// micro-kernel multiply-add only — and is exact for `alpha == 1`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    packed: &mut [f32],
    a: &[f32],
    trans_a: bool,
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    alpha: f32,
) {
    let mut offset = 0;
    for ip in (0..mc).step_by(MR) {
        let height = MR.min(mc - ip);
        if !trans_a && height == MR {
            // Common full-panel case: interleave MR contiguous source rows.
            // The fixed-stride store group vectorises, unlike the generic
            // scalar loop below.
            let rows: [&[f32]; MR] = std::array::from_fn(|i| &a[(ic + ip + i) * k + pc..][..kc]);
            let dst = &mut packed[offset..offset + kc * MR];
            for p in 0..kc {
                for (i, row) in rows.iter().enumerate() {
                    dst[p * MR + i] = alpha * row[p];
                }
            }
        } else {
            for p in 0..kc {
                let dst = &mut packed[offset + p * MR..offset + p * MR + MR];
                for (i, slot) in dst.iter_mut().take(height).enumerate() {
                    let value = if trans_a {
                        // Stored A is k x m; op(A)[i][p] = a[p * m + i].
                        a[(pc + p) * m + ic + ip + i]
                    } else {
                        a[(ic + ip + i) * k + pc + p]
                    };
                    *slot = alpha * value;
                }
                dst[height..].fill(0.0);
            }
        }
        offset += kc * MR;
    }
}

/// Drives the micro-kernel over every `MR x NR` tile of an `mc x nc` block
/// of `C` starting at `c_offset` (leading dimension `ldc`).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    packed_a: &[f32],
    packed_b: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    beta: f32,
    first_k_block: bool,
) {
    for jr in (0..nc).step_by(NR) {
        let width = NR.min(nc - jr);
        let panel_b = &packed_b[(jr / NR) * kc * NR..][..kc * NR];
        for ir in (0..mc).step_by(MR) {
            let height = MR.min(mc - ir);
            let panel_a = &packed_a[(ir / MR) * kc * MR..][..kc * MR];
            micro_kernel(
                panel_a,
                panel_b,
                kc,
                c,
                c_offset + ir * ldc + jr,
                ldc,
                height,
                width,
                beta,
                first_k_block,
            );
        }
    }
}

/// Columns held in each of the micro-kernel's three accumulator thirds.
const NRH: usize = NR / 3;

/// The register-tiled core: accumulates one `MR x NR` tile of `C` over a
/// whole `kc` slice in local accumulators, then writes the valid
/// `height x width` region back. Initialising the accumulators from `C`
/// (scaled by `beta` only on the first `K` block) is what keeps the
/// per-element accumulation chain identical to the naive triple loop.
///
/// The tile is held as three `MR x NRH` column-third arrays rather than one
/// `MR x NR` array: LLVM's scalar-replacement pass only promotes small
/// aggregates to registers, and splitting the tile keeps each third under
/// that limit so the whole accumulator stays in SIMD registers across the
/// `kc` loop (one `MR x NR` array would spill to the stack).
///
/// `manual_memcpy` is allowed deliberately: writing the spill/reload loops
/// as `copy_from_slice` takes references to the accumulator arrays, which
/// blocks their scalar replacement — the index loops keep them in
/// registers.
#[allow(clippy::too_many_arguments, clippy::manual_memcpy)]
#[inline]
fn micro_kernel(
    panel_a: &[f32],
    panel_b: &[f32],
    kc: usize,
    c: &mut [f32],
    c_offset: usize,
    ldc: usize,
    height: usize,
    width: usize,
    beta: f32,
    first_k_block: bool,
) {
    let mut acc_l = [[0.0f32; NRH]; MR];
    let mut acc_m = [[0.0f32; NRH]; MR];
    let mut acc_r = [[0.0f32; NRH]; MR];
    let width_l = width.min(NRH);
    let width_m = width.saturating_sub(NRH).min(NRH);
    let width_r = width.saturating_sub(2 * NRH);
    if first_k_block {
        if beta != 0.0 {
            for i in 0..height {
                let c_row = &c[c_offset + i * ldc..][..width];
                for j in 0..width_l {
                    acc_l[i][j] = beta * c_row[j];
                }
                for j in 0..width_m {
                    acc_m[i][j] = beta * c_row[NRH + j];
                }
                for j in 0..width_r {
                    acc_r[i][j] = beta * c_row[2 * NRH + j];
                }
            }
        }
    } else {
        for i in 0..height {
            let c_row = &c[c_offset + i * ldc..][..width];
            for j in 0..width_l {
                acc_l[i][j] = c_row[j];
            }
            for j in 0..width_m {
                acc_m[i][j] = c_row[NRH + j];
            }
            for j in 0..width_r {
                acc_r[i][j] = c_row[2 * NRH + j];
            }
        }
    }
    for p in 0..kc {
        let b_l: &[f32; NRH] = panel_b[p * NR..]
            .first_chunk()
            .expect("packed B panel is kc * NR long");
        let b_m: &[f32; NRH] = panel_b[p * NR + NRH..]
            .first_chunk()
            .expect("packed B panel is kc * NR long");
        let b_r: &[f32; NRH] = panel_b[p * NR + 2 * NRH..]
            .first_chunk()
            .expect("packed B panel is kc * NR long");
        let a_col: &[f32; MR] = panel_a[p * MR..]
            .first_chunk()
            .expect("packed A panel is kc * MR long");
        for i in 0..MR {
            let a_value = a_col[i];
            let left = &mut acc_l[i];
            for j in 0..NRH {
                left[j] = fused_mul_add(a_value, b_l[j], left[j]);
            }
            let middle = &mut acc_m[i];
            for j in 0..NRH {
                middle[j] = fused_mul_add(a_value, b_m[j], middle[j]);
            }
            let right = &mut acc_r[i];
            for j in 0..NRH {
                right[j] = fused_mul_add(a_value, b_r[j], right[j]);
            }
        }
    }
    for i in 0..height {
        let c_row = &mut c[c_offset + i * ldc..][..width];
        for j in 0..width_l {
            c_row[j] = acc_l[i][j];
        }
        for j in 0..width_m {
            c_row[NRH + j] = acc_m[i][j];
        }
        for j in 0..width_r {
            c_row[2 * NRH + j] = acc_r[i][j];
        }
    }
}

#[cfg(test)]
pub(crate) mod oracle {
    //! The naive reference kernel the blocked GEMM is tested against.
    //!
    //! This is the seed's single-threaded triple loop (minus its
    //! `a == 0.0` sparsity skip, which was removed because it perturbed the
    //! accumulation chain for pruned weights without ever paying for
    //! itself). It exists only as a test oracle: the production path is
    //! [`super::sgemm`].

    /// `C = alpha * op(A) * op(B) + beta * C`, one ascending-k accumulation
    /// chain per element — the semantics [`super::sgemm`] must match to
    /// 0 ULP.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = if beta == 0.0 {
                    0.0
                } else {
                    beta * c[i * n + j]
                };
                for p in 0..k {
                    let a_value = if trans_a { a[p * m + i] } else { a[i * k + p] };
                    let b_value = if trans_b { b[j * k + p] } else { b[p * n + j] };
                    acc = super::fused_mul_add(alpha * a_value, b_value, acc);
                }
                c[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn random_vec(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.normal_with(0.0, 1.0)).collect()
    }

    fn assert_bits_equal(actual: &[f32], expected: &[f32], context: &str) {
        assert_eq!(actual.len(), expected.len(), "{context}: length");
        for (index, (x, y)) in actual.iter().zip(expected).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: element {index} differs ({x} vs {y})"
            );
        }
    }

    /// The satellite property test: blocked GEMM == naive oracle to 0 ULP
    /// across random shapes, transpose flags, alpha/beta and thread counts.
    #[test]
    fn property_gemm_matches_oracle_to_zero_ulp() {
        let mut rng = StdRng::seed_from(0xBEEF);
        let alphas = [1.0f32, -1.0, 0.5];
        let betas = [0.0f32, 1.0, 0.25];
        for case in 0..60 {
            let m = 1 + (rng.next_u64() % 50) as usize;
            let n = 1 + (rng.next_u64() % 50) as usize;
            let k = 1 + (rng.next_u64() % 50) as usize;
            let trans_a = rng.next_u64().is_multiple_of(2);
            let trans_b = rng.next_u64().is_multiple_of(2);
            let alpha = alphas[(rng.next_u64() % alphas.len() as u64) as usize];
            let beta = betas[(rng.next_u64() % betas.len() as u64) as usize];
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let c0 = random_vec(m * n, &mut rng);
            let mut expected = c0.clone();
            oracle::gemm(
                trans_a,
                trans_b,
                m,
                n,
                k,
                alpha,
                &a,
                &b,
                beta,
                &mut expected,
            );
            for threads in [1usize, 2, 4] {
                let mut c = c0.clone();
                sgemm(
                    trans_a,
                    trans_b,
                    m,
                    n,
                    k,
                    alpha,
                    &a,
                    &b,
                    beta,
                    &mut c,
                    Parallelism::fixed(threads),
                );
                assert_bits_equal(
                    &c,
                    &expected,
                    &format!(
                        "case {case}: m={m} n={n} k={k} ta={trans_a} tb={trans_b} \
                         alpha={alpha} beta={beta} threads={threads}"
                    ),
                );
            }
        }
    }

    /// Shapes that cross every blocking boundary (MC, KC, NC and the MR/NR
    /// edge tiles) still match the oracle exactly.
    #[test]
    fn blocking_boundaries_match_oracle_to_zero_ulp() {
        let mut rng = StdRng::seed_from(42);
        for &(m, n, k) in &[
            (MC + MR + 1, NR - 1, KC + 3),
            (MR - 1, NC + NR + 5, 7),
            (2 * MC, 2 * NR, 2 * KC),
            (1, 1, KC + 1),
        ] {
            let a = random_vec(m * k, &mut rng);
            let b = random_vec(k * n, &mut rng);
            let mut expected = vec![0.0; m * n];
            oracle::gemm(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut expected);
            let mut c = vec![0.0; m * n];
            sgemm(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                Parallelism::fixed(3),
            );
            assert_bits_equal(&c, &expected, &format!("m={m} n={n} k={k}"));
        }
    }

    /// A shape big enough to actually engage the scoped-thread split must be
    /// bit-identical for every thread count.
    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from(7);
        let (m, n, k) = (97, 83, 120);
        assert!(m * n * k >= PARALLEL_MIN_VOLUME);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let reference = {
            let mut c = vec![0.0; m * n];
            sgemm(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                Parallelism::single(),
            );
            c
        };
        for threads in [2usize, 3, 4, 8] {
            let mut c = vec![0.0; m * n];
            sgemm(
                false,
                false,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
                Parallelism::fixed(threads),
            );
            assert_bits_equal(&c, &reference, &format!("threads={threads}"));
        }
    }

    #[test]
    fn beta_zero_overwrites_poisoned_output() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [f32::NAN; 1];
        sgemm(
            false,
            false,
            1,
            1,
            2,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c[0], 11.0);
    }

    #[test]
    fn degenerate_k_applies_beta_only() {
        let mut c = [2.0f32, -4.0];
        sgemm(
            false,
            false,
            1,
            2,
            0,
            1.0,
            &[],
            &[],
            0.5,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c, [1.0, -2.0]);
        let mut c = [f32::NAN, f32::NAN];
        sgemm(
            false,
            false,
            1,
            2,
            0,
            1.0,
            &[],
            &[],
            0.0,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c, [0.0, 0.0]);
    }

    #[test]
    fn alpha_zero_short_circuits_to_beta_scaling() {
        let a = [f32::NAN; 4];
        let b = [f32::NAN; 4];
        let mut c = [1.0f32, 2.0, 3.0, 4.0];
        sgemm(
            false,
            false,
            2,
            2,
            2,
            0.0,
            &a,
            &b,
            2.0,
            &mut c,
            Parallelism::single(),
        );
        assert_eq!(c, [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "sgemm: A buffer")]
    fn mismatched_buffers_panic() {
        let mut c = [0.0f32; 4];
        sgemm(
            false,
            false,
            2,
            2,
            2,
            1.0,
            &[0.0; 3],
            &[0.0; 4],
            0.0,
            &mut c,
            Parallelism::single(),
        );
    }
}
